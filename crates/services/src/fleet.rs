//! Concurrent multi-client fleet harness: heterogeneous, long-lived fleets.
//!
//! The paper measures each service from a *single* test computer on one
//! campus link; its server-side findings (inter-user deduplication,
//! per-service completion time and overhead, §4–§5) only matter at provider
//! scale, and its central message — the best service depends on the workload
//! *and* the client's network — only shows when clients differ. This module
//! drives K independent [`SyncClient`]s, each described by a [`ClientSlot`]
//! carrying its own [`ServiceProfile`] **and** its own [`AccessLink`]
//! (mixed Dropbox/SkyDrive/Google Drive fleets on mixed ADSL/fibre/3G
//! links), all committing into one shared sharded [`ObjectStore`].
//!
//! Fleets are long-lived: the run proceeds in *rounds* on a **virtual
//! clock**. Each run first derives a [`FleetSchedule`] — a pure function of
//! `(FleetSpec, seed)` — that decides, per client and round, whether the
//! client *activates* (syncs one batch, offset by its seeded arrival jitter
//! and [`ThinkTime`] pause) or sits **idle**: connected, syncing nothing,
//! but paying the §3.1 keep-alive signalling for the round's span of
//! virtual time. Clients may **join** mid-run (`join_round`) and **leave**
//! mid-run (`leave_after`), and a leaving client hard-deletes its manifests
//! so the store's [`GcPolicy`] decides when the bytes come back. Slots with
//! a **restore fan** (`pull_from`, seeded by
//! [`FleetSpec::with_restore_fan`]) additionally pull other users'
//! namespaces back down through their own links after each round they
//! sync in — round-major fleets mix uploaders and downloaders.
//!
//! Execution is **event-driven**: the schedule is lowered into a
//! time-ordered [`EventHeap`] of `(timestamp, phase, client)` entries —
//! activations, keep-alive epochs, restore-fan pulls, departures, GC
//! sweeps — and [`run_fleet`] pops it wave by wave (see [`crate::engine`]),
//! touching only each event's client instead of materialising the whole
//! population per round.
//!
//! Determinism contract: the schedule is *data*, not thread timing — every
//! temporal draw is fixed before the first client spawns. A client's
//! simulation consumes only its own seed, its schedule entries and its own
//! planner state, and the shared store's aggregate accounting is
//! order-independent within each wave. The heap's phase sub-key keeps the
//! instants phase-separated — at one virtual instant all sync commits
//! complete, idle clients poll (their own universes only), then the restore
//! fans run (store *reads* only, so they commute), then leaves release
//! references, and garbage collection sweeps last — so [`run_fleet`]
//! produces bit-identical [`ClientSummary`]s and [`AggregateStats`] whether
//! the clients run on one thread (sequential replay) or on one thread per
//! client, jitter, churn, GC and restores included. A puller whose source
//! departed at an *earlier* instant records a clean failure; same-instant
//! departures are still visible because restores precede leaves. The
//! `fleet_scaling` bench and the workspace property tests assert exactly
//! that.
//!
//! The legacy configuration — zero think time, zero jitter, activation
//! 1.0 — degenerates to the old lock-step timeline byte-identically, so the
//! committed `fleet.*`/`hetero.*`/`restore.*` bench baselines prove the
//! scheduler refactor safe.

use crate::client::{RestoreOutcome, SyncClient, SyncOutcome};
use crate::engine::{EventHeap, FleetEvent, Phase};
use crate::profile::ServiceProfile;
use crate::retry::RetryConfig;
use crate::schedule::{FleetSchedule, SyncActivation, ThinkTime};
use crate::session::FaultStats;
use cloudsim_net::{AccessLink, FaultSchedule, FaultSpec, Simulator};
use cloudsim_storage::{AggregateStats, GcPolicy, ObjectStore, UploadPipeline};
use cloudsim_trace::series::SampleStats;
use cloudsim_trace::{FlowKind, LatencyHistogram, SimDuration, SimTime};
use cloudsim_workload::{generate, FileKind, GeneratedFile};
use serde::Serialize;
use std::sync::Mutex;

/// Simulated seconds between round epochs: a client joining in round `r`
/// starts its login at `r * ROUND_EPOCH_SECS` in its own timeline, and an
/// idle round advances a connected client's virtual clock by exactly one
/// epoch of keep-alive polling.
pub const ROUND_EPOCH_SECS: u64 = 60;

/// Seed salt for per-(client, round) upload outage schedules.
const SYNC_FAULT_SALT: u64 = 0xFA017;
/// Seed salt for per-(client, round) upload retry jitter.
const SYNC_RETRY_SALT: u64 = 0xFA018;
/// Seed salt base for per-(client, pull, round) restore outage schedules
/// (even offsets; odd offsets are the retry-jitter salts).
const RESTORE_FAULT_SALT: u64 = 0xFA020;
/// Seed salt base for per-(client, pull, round) restore retry jitter.
const RESTORE_RETRY_SALT: u64 = 0xFA021;

/// Fault injection for a fleet run: the outage-schedule shape every faulted
/// transfer window draws from, and the retry policy every client wraps its
/// storage transfers in. The schedules themselves are derived per client
/// and per round from the fleet's master seed — pure data, like the
/// temporal schedule — so concurrent faulted runs replay bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FleetFaults {
    /// How outages are drawn over each activation's transfer window.
    pub spec: FaultSpec,
    /// The retry policy applied to every interrupted transfer.
    pub retry: RetryConfig,
}

impl FleetFaults {
    /// A convenient default shape: up to three outages of 2–8 s drawn over
    /// a 60 s window per activation, with the standard exponential policy.
    pub fn standard() -> FleetFaults {
        FleetFaults {
            spec: FaultSpec {
                horizon: SimDuration::from_secs(60),
                outages: 3,
                min_outage: SimDuration::from_secs(2),
                max_outage: SimDuration::from_secs(8),
            },
            retry: RetryConfig::standard_exponential(),
        }
    }

    /// The same outage shape with a different retry policy — the knob the
    /// faults suite turns to compare policies under identical failures.
    pub fn with_retry(mut self, retry: RetryConfig) -> FleetFaults {
        self.retry = retry;
        self
    }
}

/// One client slot of a fleet: which service it runs, which access link it
/// sits behind, and when it participates.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClientSlot {
    /// The service this client syncs with.
    pub profile: ServiceProfile,
    /// The access link between the client and the wider Internet.
    pub link: AccessLink,
    /// First round the client is active (0 = present from the start).
    pub join_round: usize,
    /// Last round the client participates in, after which it hard-deletes
    /// its manifests and departs. `None` = stays to the end.
    pub leave_after: Option<usize>,
    /// The slot's restore fan: after each sync round, this client pulls the
    /// full namespaces of these slot indices back down through its access
    /// link (empty = pure uploader). Pulling a departed slot fails cleanly
    /// and is counted, not panicked on.
    pub pull_from: Vec<usize>,
}

impl ClientSlot {
    /// A slot present for the whole run: given service, campus link.
    pub fn resident(profile: ServiceProfile) -> ClientSlot {
        ClientSlot {
            profile,
            link: AccessLink::campus(),
            join_round: 0,
            leave_after: None,
            pull_from: Vec::new(),
        }
    }

    /// Returns a copy behind a different access link.
    pub fn on_link(mut self, link: AccessLink) -> ClientSlot {
        self.link = link;
        self
    }

    /// Returns a copy that pulls the given slots' content after every sync
    /// round.
    pub fn pulling_from(mut self, sources: Vec<usize>) -> ClientSlot {
        self.pull_from = sources;
        self
    }

    /// True when the slot is *connected* in round `round` (its membership
    /// window covers the round). Whether it actually syncs that round is
    /// the schedule's call: an activation draw below the fleet's activation
    /// probability syncs a batch, anything else is an idle round.
    pub fn active_in(&self, round: usize) -> bool {
        round >= self.join_round && self.leave_after.map(|l| round <= l).unwrap_or(true)
    }

    /// Number of rounds the slot is connected within a run of `rounds`
    /// rounds — the slot's membership window, *not* its sync count. With an
    /// activation probability below 1.0 some of these rounds are idle, so
    /// completion-distribution denominators and expected-volume accounting
    /// must use [`FleetSpec::sync_rounds_of`] (which consults the schedule)
    /// instead of this window. Returns 0 for a zero-round run or a window
    /// that lies entirely outside it.
    pub fn active_rounds(&self, rounds: usize) -> usize {
        if rounds == 0 || self.join_round >= rounds {
            return 0;
        }
        let last = self.leave_after.map(|l| l.min(rounds - 1)).unwrap_or(rounds - 1);
        (last + 1).saturating_sub(self.join_round)
    }
}

/// Workload description for one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetSpec {
    /// One slot per client, indexed by client number.
    pub slots: Vec<ClientSlot>,
    /// Rounds the fleet runs; every active client syncs one batch per round.
    pub rounds: usize,
    /// Files per batch.
    pub files_per_batch: usize,
    /// Size of each file in bytes.
    pub file_size: usize,
    /// Content type of the generated files.
    pub kind: FileKind,
    /// Fraction of each batch (0.0–1.0) drawn from a fleet-wide shared pool:
    /// identical bytes across users, modelling popular content. This is what
    /// inter-user dedup (§4.3) acts on.
    pub shared_fraction: f64,
    /// Master seed; every (client, round, file) derives an independent seed,
    /// and the churn schedule derives from it too.
    pub seed: u64,
    /// GC policy for stores the convenience runners create.
    pub gc: GcPolicy,
    /// The `(joiners, leavers)` churn population installed by
    /// [`FleetSpec::with_churn`], kept so a later [`FleetSpec::with_seed`]
    /// re-derives the schedule instead of leaving a stale one.
    pub churn: Option<(usize, usize)>,
    /// The `(pullers, sources_per_puller)` restore fan installed by
    /// [`FleetSpec::with_restore_fan`], kept for the same re-derivation
    /// reason as `churn`.
    pub restore_fan: Option<(usize, usize)>,
    /// The think-time distribution: the seeded pause a client inserts
    /// before each activity burst. [`ThinkTime::NONE`] (the default) is the
    /// legacy lock-step behaviour.
    pub think: ThinkTime,
    /// Upper bound of the intra-round arrival jitter: each activation is
    /// offset by a seeded draw from `[0, arrival_jitter]` so clients start
    /// their syncs at distinct virtual instants instead of a shared
    /// barrier. Zero (the default) is the legacy behaviour.
    pub arrival_jitter: SimDuration,
    /// Per-round activation probability in `[0, 1]`: each connected round
    /// activates (syncs a batch) with this probability and otherwise idles,
    /// paying only background signalling. 1.0 (the default) is the legacy
    /// every-round-syncs behaviour.
    pub activation: f64,
    /// Fault injection: `None` (the default) runs the exact fault-free code
    /// path — byte-identical to fleets that predate the failure model.
    /// `Some` derives a seeded outage schedule per activation (and per
    /// restore pull) and drives every storage transfer through the
    /// resumable session layer under the configured retry policy. Control
    /// traffic stays fault-free. Schedules derive from the master seed at
    /// run time, so a later [`FleetSpec::with_seed`] needs no re-derivation.
    pub faults: Option<FleetFaults>,
}

impl FleetSpec {
    /// A homogeneous fleet of `clients` users of one service on the campus
    /// link, each syncing one round of ten 64 kB files, half of them from
    /// the shared pool — the PR 2 scaling-suite workload.
    pub fn new(profile: ServiceProfile, clients: usize) -> FleetSpec {
        let slots = (0..clients).map(|_| ClientSlot::resident(profile.clone())).collect();
        FleetSpec {
            slots,
            rounds: 1,
            files_per_batch: 10,
            file_size: 64 * 1024,
            kind: FileKind::RandomBinary,
            shared_fraction: 0.5,
            seed: 0xF1EE7,
            gc: GcPolicy::default(),
            churn: None,
            restore_fan: None,
            think: ThinkTime::NONE,
            arrival_jitter: SimDuration::ZERO,
            activation: 1.0,
            faults: None,
        }
    }

    /// A fully explicit heterogeneous fleet.
    pub fn heterogeneous(slots: Vec<ClientSlot>) -> FleetSpec {
        let mut spec = FleetSpec::new(ServiceProfile::dropbox(), 0);
        spec.slots = slots;
        spec
    }

    /// Number of client slots.
    pub fn clients(&self) -> usize {
        self.slots.len()
    }

    /// Sets rounds (historically "batches per client": a non-churning client
    /// syncs exactly one batch per round). If a churn schedule was already
    /// installed it is re-derived for the new round count, so builder-call
    /// order cannot leave join/leave rounds outside the run.
    pub fn with_batches(mut self, rounds: usize) -> FleetSpec {
        assert!(rounds > 0, "a fleet needs at least one round");
        self.rounds = rounds;
        if let Some((joiners, leavers)) = self.churn {
            assert!(self.rounds >= 2, "churn needs at least two rounds");
            self.apply_churn(joiners, leavers);
        }
        self
    }

    /// Sets the per-batch workload (file count and size).
    pub fn with_files(mut self, files_per_batch: usize, file_size: usize) -> FleetSpec {
        self.files_per_batch = files_per_batch;
        self.file_size = file_size;
        self
    }

    /// Sets the shared-pool fraction.
    pub fn with_shared_fraction(mut self, fraction: f64) -> FleetSpec {
        assert!((0.0..=1.0).contains(&fraction), "shared fraction must be within [0, 1]");
        self.shared_fraction = fraction;
        self
    }

    /// Sets the master seed. If a churn schedule or restore fan was already
    /// installed it is re-derived from the new seed, so builder-call order
    /// cannot leave a schedule that contradicts the seed.
    pub fn with_seed(mut self, seed: u64) -> FleetSpec {
        self.seed = seed;
        if let Some((joiners, leavers)) = self.churn {
            self.apply_churn(joiners, leavers);
        }
        if let Some((pullers, sources)) = self.restore_fan {
            self.apply_restore_fan(pullers, sources);
        }
        self
    }

    /// Sets the GC policy the convenience runners build their store with.
    pub fn with_gc(mut self, gc: GcPolicy) -> FleetSpec {
        self.gc = gc;
        self
    }

    /// Sets the think-time distribution sampled before each activity burst.
    pub fn with_think_time(mut self, think: ThinkTime) -> FleetSpec {
        if let ThinkTime::Uniform { min, max } = think {
            assert!(max >= min, "uniform think time needs min <= max");
        }
        self.think = think;
        self
    }

    /// Sets the intra-round arrival jitter bound.
    pub fn with_arrival_jitter(mut self, jitter: SimDuration) -> FleetSpec {
        self.arrival_jitter = jitter;
        self
    }

    /// Sets the per-round activation probability (1.0 = sync every
    /// connected round, the legacy behaviour; below that, the remaining
    /// rounds are idle).
    pub fn with_activation(mut self, activation: f64) -> FleetSpec {
        assert!(
            (0.0..=1.0).contains(&activation),
            "activation probability must be within [0, 1], got {activation}"
        );
        self.activation = activation;
        self
    }

    /// Enables fault injection: every activation's storage transfers run
    /// under a seeded outage schedule and the configured retry policy (see
    /// [`FleetSpec::faults`]).
    pub fn with_faults(mut self, faults: FleetFaults) -> FleetSpec {
        faults.spec.validate();
        self.faults = Some(faults);
        self
    }

    /// Derives the fleet's temporal schedule — a pure function of the spec
    /// (see [`FleetSchedule::generate`]): calling this twice, or from any
    /// number of threads, yields identical event lists.
    pub fn schedule(&self) -> FleetSchedule {
        FleetSchedule::generate(self)
    }

    /// True when the temporal configuration degenerates to the legacy
    /// lock-step (no think time, no jitter, full activation).
    pub fn is_lockstep(&self) -> bool {
        self.think.is_zero() && self.arrival_jitter.is_zero() && self.activation >= 1.0
    }

    /// Rounds slot `i` actually syncs in (activated rounds of the derived
    /// schedule) — the denominator completion distributions and expected
    /// volumes must use once idle rounds exist. Each call derives the whole
    /// fleet schedule; when querying many slots, call
    /// [`FleetSpec::schedule`] once and index `clients[i].sync_rounds()`
    /// instead (as [`FleetSpec::total_logical_bytes`] does internally).
    pub fn sync_rounds_of(&self, i: usize) -> usize {
        self.schedule().clients[i].sync_rounds()
    }

    /// Distributes service profiles round-robin across the slots (a mixed
    /// fleet: slot `i` runs `profiles[i % len]`).
    pub fn with_profiles(mut self, profiles: &[ServiceProfile]) -> FleetSpec {
        assert!(!profiles.is_empty(), "need at least one profile");
        for (i, slot) in self.slots.iter_mut().enumerate() {
            slot.profile = profiles[i % profiles.len()].clone();
        }
        self
    }

    /// Distributes access links round-robin across the slots (per-client
    /// network diversity: slot `i` sits behind `links[i % len]`).
    pub fn with_links(mut self, links: &[AccessLink]) -> FleetSpec {
        assert!(!links.is_empty(), "need at least one link");
        for (i, slot) in self.slots.iter_mut().enumerate() {
            slot.link = links[i % links.len()];
        }
        self
    }

    /// Installs a deterministic churn schedule derived from the master seed:
    /// the first `leavers` slots leave mid-run (hard-deleting their
    /// manifests), the last `joiners` slots join mid-run. Requires at least
    /// two rounds and disjoint joiner/leaver populations.
    pub fn with_churn(mut self, joiners: usize, leavers: usize) -> FleetSpec {
        assert!(self.rounds >= 2, "churn needs at least two rounds");
        assert!(
            joiners + leavers <= self.slots.len(),
            "churn population exceeds the fleet ({} + {} > {})",
            joiners,
            leavers,
            self.slots.len()
        );
        self.churn = Some((joiners, leavers));
        self.apply_churn(joiners, leavers);
        self
    }

    fn apply_churn(&mut self, joiners: usize, leavers: usize) {
        // The installed schedule owns every slot's lifecycle: reset first,
        // so re-deriving (new seed, new round count, smaller population)
        // never leaves stale assignments outside the current population.
        for slot in self.slots.iter_mut() {
            slot.join_round = 0;
            slot.leave_after = None;
        }
        let span = (self.rounds - 1) as u64;
        for l in 0..leavers {
            // Leave after some round in [0, rounds-2]: departures always
            // happen strictly before the run ends, so later rounds observe
            // the released references.
            let pick = self.derived_seed(l as u64, 0xC0FFEE, 0) % span;
            self.slots[l].leave_after = Some(pick as usize);
        }
        let n = self.slots.len();
        for j in 0..joiners {
            // Join at some round in [1, rounds-1].
            let pick = 1 + self.derived_seed(j as u64, 0x901E5, 0) % span;
            self.slots[n - 1 - j].join_round = pick as usize;
        }
    }

    /// Installs a seeded restore fan: the last `pullers` slots become
    /// downloaders that, after every sync round, pull the full namespaces of
    /// `sources_per_puller` other slots (drawn deterministically from the
    /// master seed) back down through their own access links. Round-major
    /// fleets thereby mix uploaders and downloaders; a puller whose source
    /// departed (churn) records a clean failure. Like churn, the fan is
    /// re-derived if the seed changes later.
    pub fn with_restore_fan(mut self, pullers: usize, sources_per_puller: usize) -> FleetSpec {
        assert!(pullers <= self.slots.len(), "more pullers than slots");
        assert!(sources_per_puller >= 1, "a puller needs at least one source");
        assert!(self.slots.len() >= 2, "a restore fan needs at least two slots");
        self.restore_fan = Some((pullers, sources_per_puller));
        self.apply_restore_fan(pullers, sources_per_puller);
        self
    }

    fn apply_restore_fan(&mut self, pullers: usize, sources_per_puller: usize) {
        let n = self.slots.len();
        for slot in self.slots.iter_mut() {
            slot.pull_from = Vec::new();
        }
        for k in 0..pullers {
            let i = n - 1 - k;
            let mut sources = Vec::with_capacity(sources_per_puller);
            let mut probe = 0u64;
            while sources.len() < sources_per_puller.min(n - 1) {
                let pick = (self.derived_seed(i as u64, 0x9E57, probe) % n as u64) as usize;
                probe += 1;
                if pick != i && !sources.contains(&pick) {
                    sources.push(pick);
                }
            }
            self.slots[i].pull_from = sources;
        }
    }

    /// Total plaintext bytes the whole fleet synchronises over all its
    /// *activated* rounds. Idle rounds contribute nothing: the schedule,
    /// not the membership window, is the denominator.
    pub fn total_logical_bytes(&self) -> u64 {
        let per_batch = self.files_per_batch as u64 * self.file_size as u64;
        let schedule = self.schedule();
        schedule.clients.iter().map(|c| c.sync_rounds() as u64 * per_batch).sum()
    }

    /// The user name of client `i`.
    pub fn user(&self, i: usize) -> String {
        format!("user-{i:04}")
    }

    fn derived_seed(&self, client: u64, batch: u64, file: u64) -> u64 {
        cloudsim_workload::seed::derive_seed(self.seed, client, batch, file)
    }

    /// Number of files of each batch that come from the fleet-wide shared
    /// pool (identical bytes for every client).
    pub fn shared_files_per_batch(&self) -> usize {
        ((self.files_per_batch as f64) * self.shared_fraction).round() as usize
    }

    /// Lazily generates the batch client `client` syncs in round `round`,
    /// one file at a time: content is produced only when the iterator is
    /// advanced, so drivers that stream files (or never touch content at
    /// all, like the fleet-scale runner's metadata path) pay nothing for
    /// the files they skip. The first [`FleetSpec::shared_files_per_batch`]
    /// files carry shared-pool content (seeded by round and file index
    /// only, identical across clients); the rest are private to the client.
    /// Collecting the stream yields exactly [`FleetSpec::workload`].
    pub fn workload_stream(
        &self,
        client: usize,
        round: usize,
    ) -> impl Iterator<Item = GeneratedFile> + '_ {
        let shared = self.shared_files_per_batch();
        (0..self.files_per_batch).map(move |f| {
            let (label, seed) = if f < shared {
                // Shared pool: client index deliberately excluded.
                ("shared", self.derived_seed(u64::MAX, round as u64, f as u64))
            } else {
                ("private", self.derived_seed(client as u64, round as u64, f as u64))
            };
            GeneratedFile {
                path: format!("{label}/b{round:03}_f{f:04}.{}", self.kind.extension()),
                content: generate(self.kind, self.file_size, seed),
            }
        })
    }

    /// Generates the batch client `client` syncs in round `round` — the
    /// eager collection of [`FleetSpec::workload_stream`].
    pub fn workload(&self, client: usize, round: usize) -> Vec<GeneratedFile> {
        self.workload_stream(client, round).collect()
    }

    /// Generates the batch one schedule activation syncs — batch generation
    /// is keyed to the activation event, not a bare round counter. Content
    /// stays seeded by the activation's *round* so the fleet-wide shared
    /// pool keeps aligning across clients whatever their idle patterns (and
    /// the legacy lock-step configuration, where ordinal == round offset,
    /// replays the old content byte-identically).
    pub fn workload_for(&self, client: usize, activation: &SyncActivation) -> Vec<GeneratedFile> {
        self.workload(client, activation.round)
    }

    /// The lazy counterpart of [`FleetSpec::workload_for`]: the activation's
    /// batch as a per-file stream (see [`FleetSpec::workload_stream`]).
    pub fn workload_stream_for(
        &self,
        client: usize,
        activation: &SyncActivation,
    ) -> impl Iterator<Item = GeneratedFile> + '_ {
        self.workload_stream(client, activation.round)
    }

    fn validate(&self) {
        assert!(!self.slots.is_empty(), "a fleet needs at least one client");
        assert!(self.rounds > 0, "a fleet needs at least one round");
        if let Some(faults) = &self.faults {
            faults.spec.validate();
        }
        for (i, slot) in self.slots.iter().enumerate() {
            assert!(
                slot.join_round < self.rounds,
                "client {i} joins in round {} of a {}-round run",
                slot.join_round,
                self.rounds
            );
            if let Some(leave) = slot.leave_after {
                assert!(
                    leave >= slot.join_round,
                    "client {i} leaves (after round {leave}) before joining (round {})",
                    slot.join_round
                );
                assert!(
                    leave < self.rounds,
                    "client {i} leaves after round {leave} of a {}-round run — the departure \
                     would never execute",
                    self.rounds
                );
            }
        }
    }
}

/// What one client of the fleet did, in its own simulated universe.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSummary {
    /// The user account the client synced as.
    pub user: String,
    /// Service the client ran.
    pub service: String,
    /// Access link the client sat behind.
    pub link: String,
    /// Round the client joined in.
    pub join_round: usize,
    /// Round after which the client left, `None` when it stayed.
    pub left_after: Option<usize>,
    /// Manifests the client hard-deleted on departure.
    pub deleted_manifests: usize,
    /// Connected rounds the client spent idle: no sync, keep-alive
    /// signalling only.
    pub idle_rounds: usize,
    /// One outcome per *activated* round, in order. Empty for a client the
    /// schedule never activated (always idle).
    pub outcomes: Vec<SyncOutcome>,
    /// One outcome per restore operation (pull of one source user in one
    /// round), in execution order. Empty for pure uploaders.
    pub restores: Vec<RestoreOutcome>,
    /// Simulated seconds from the first batch's modification to the last
    /// batch's upload completion. 0.0 for a client that never synced.
    pub completion_secs: f64,
    /// Plaintext bytes of all batches.
    pub logical_bytes: u64,
    /// Payload bytes the client actually uploaded (after its capabilities).
    pub uploaded_payload: u64,
    /// Wire bytes of the client's control-plane flows (login, metadata
    /// commits, keep-alive polls) — the §3.1 background-signalling side of
    /// the background-vs-payload split.
    pub background_wire_bytes: u64,
    /// Wire bytes of the client's storage flows (chunk uploads and
    /// downloads, headers included) — the payload side of the split.
    pub payload_wire_bytes: u64,
    /// Payload bytes durably committed. Equals `uploaded_payload` when the
    /// fleet runs fault-free (or every retry succeeded); falls below it
    /// when retry budgets ran out and chunks were abandoned.
    pub committed_payload: u64,
    /// Chunks abandoned after their retry budget ran out (0 without faults).
    pub abandoned_chunks: usize,
    /// Files abandoned mid-restore after their retry budget ran out.
    pub abandoned_restores: usize,
    /// Interruption / retry / wasted-byte accounting over every faulted
    /// transfer of the client. All-zero without faults.
    pub fault_stats: FaultStats,
    /// Distribution of every backoff wait the client's faulted transfers
    /// slept. Empty without faults.
    pub backoff_waits: LatencyHistogram,
}

impl ClientSummary {
    /// Payload bytes the client pulled down across all its restores.
    pub fn downloaded_payload(&self) -> u64 {
        self.restores.iter().map(|r| r.downloaded_payload).sum()
    }

    /// Plaintext bytes of the content this client restored.
    pub fn restored_logical_bytes(&self) -> u64 {
        self.restores.iter().map(|r| r.logical_bytes).sum()
    }

    /// Plaintext bytes the down-path dedup check kept off the wire.
    pub fn restore_dedup_skipped_bytes(&self) -> u64 {
        self.restores.iter().map(|r| r.dedup_skipped_bytes).sum()
    }

    /// Restore operations that failed cleanly (hard-deleted manifests,
    /// departed sources), summed over every pull.
    pub fn restore_failures(&self) -> usize {
        self.restores.iter().map(|r| r.files_failed).sum()
    }

    /// Simulated seconds this client spent restoring, summed over pulls.
    pub fn restore_secs(&self) -> f64 {
        self.restores.iter().map(|r| r.duration_secs()).sum()
    }

    /// Time to first restored byte of the client's first payload-moving
    /// pull, if any payload ever travelled.
    pub fn first_restore_ttfb_secs(&self) -> Option<f64> {
        self.restores.iter().find_map(|r| r.ttfb_secs())
    }

    /// Rounds this client actually synced a batch in.
    pub fn synced_rounds(&self) -> usize {
        self.outcomes.len()
    }

    /// Virtual start time of this client's first sync, if it ever synced.
    pub fn first_sync_started_at(&self) -> Option<SimTime> {
        self.outcomes.first().map(|o| o.sync_started_at)
    }

    /// Paper-style sync start-up delays (modification to sync start), one
    /// sample per activated round.
    pub fn startup_delays_secs(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| (o.sync_started_at - o.modification_time).as_secs_f64())
            .collect()
    }
}

/// The result of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Per-client summaries, indexed by client number.
    pub clients: Vec<ClientSummary>,
    /// The shared store the fleet committed into.
    pub store: ObjectStore,
    /// Host wall-clock time the run took (the only non-deterministic field;
    /// used for sharded-vs-single-lock throughput comparisons).
    pub elapsed: std::time::Duration,
}

impl FleetRun {
    /// Aggregate server-side statistics after the run.
    pub fn aggregate(&self) -> AggregateStats {
        self.store.aggregate()
    }

    /// Distribution of per-client completion times (simulated seconds) over
    /// the clients that actually synced — always-idle clients are excluded
    /// so idle rounds never drag the denominator (a fleet where nobody
    /// synced reports the zero distribution, not NaNs).
    pub fn completion_stats(&self) -> SampleStats {
        let samples: Vec<f64> = self
            .clients
            .iter()
            .filter(|c| !c.outcomes.is_empty())
            .map(|c| c.completion_secs)
            .collect();
        SampleStats::from_samples(&samples).unwrap_or(SampleStats::zero())
    }

    /// Plaintext bytes synchronised by the whole fleet.
    pub fn total_logical_bytes(&self) -> u64 {
        self.clients.iter().map(|c| c.logical_bytes).sum()
    }

    /// Payload bytes uploaded by the whole fleet.
    pub fn total_uploaded_payload(&self) -> u64 {
        self.clients.iter().map(|c| c.uploaded_payload).sum()
    }

    /// Aggregate goodput in bits per simulated second: fleet plaintext volume
    /// over the slowest client's completion time (clients sync in parallel
    /// wall-clock-wise, so the fleet is done when the last client is).
    /// 0.0 for empty or zero-byte runs — never NaN or infinite.
    pub fn aggregate_goodput_bps(&self) -> f64 {
        let slowest = self.clients.iter().map(|c| c.completion_secs).fold(0.0f64, f64::max);
        if slowest > 0.0 {
            self.total_logical_bytes() as f64 * 8.0 / slowest
        } else {
            0.0
        }
    }

    /// Server-side inter-user dedup ratio after the run. 0.0 when the store
    /// holds no physical bytes (empty run, or churn + GC reclaimed
    /// everything) — never NaN or infinite; see
    /// [`AggregateStats::dedup_ratio`].
    pub fn dedup_ratio(&self) -> f64 {
        self.aggregate().dedup_ratio()
    }

    /// Bytes garbage collection reclaimed during the run (eager frees and
    /// mark-sweep passes combined).
    pub fn reclaimed_bytes(&self) -> u64 {
        self.aggregate().reclaimed_bytes
    }

    /// Host-side throughput of the harness itself: plaintext bytes committed
    /// per wall-clock second. This is the number the sharded store improves.
    /// 0.0 for empty or unmeasurably fast runs — never NaN or infinite.
    pub fn wall_throughput_bps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        let bytes = self.total_logical_bytes();
        if secs > 0.0 && bytes > 0 {
            bytes as f64 * 8.0 / secs
        } else {
            0.0
        }
    }

    /// Completion-time distribution per service, in first-appearance order —
    /// the per-profile breakdown of the heterogeneous suite. Clients the
    /// schedule never activated are excluded from their group's samples
    /// (and a group of only-idle clients is omitted), keeping the
    /// denominators honest under idle rounds.
    pub fn per_service_completion(&self) -> Vec<(String, SampleStats)> {
        self.grouped(|c| c.service.clone())
            .into_iter()
            .filter_map(|(name, members)| {
                let samples: Vec<f64> = members
                    .iter()
                    .filter(|c| !c.outcomes.is_empty())
                    .map(|c| c.completion_secs)
                    .collect();
                SampleStats::from_samples(&samples).map(|stats| (name, stats))
            })
            .collect()
    }

    /// Goodput per access link in bits per simulated second (volume of the
    /// link's clients over the slowest of them), in first-appearance order.
    pub fn per_link_goodput_bps(&self) -> Vec<(String, f64)> {
        self.grouped(|c| c.link.clone())
            .into_iter()
            .map(|(name, members)| {
                let bytes: u64 = members.iter().map(|c| c.logical_bytes).sum();
                let slowest = members.iter().map(|c| c.completion_secs).fold(0.0f64, f64::max);
                let bps = if slowest > 0.0 { bytes as f64 * 8.0 / slowest } else { 0.0 };
                (name, bps)
            })
            .collect()
    }

    /// Payload bytes the whole fleet pulled down across its restore fans.
    pub fn total_downloaded_payload(&self) -> u64 {
        self.clients.iter().map(|c| c.downloaded_payload()).sum()
    }

    /// Plaintext bytes of the content the fleet restored.
    pub fn total_restored_logical_bytes(&self) -> u64 {
        self.clients.iter().map(|c| c.restored_logical_bytes()).sum()
    }

    /// Plaintext bytes the down-path dedup checks kept off the wire — the
    /// cross-user savings of the shared pool, seen from the download side.
    pub fn restore_dedup_saved_bytes(&self) -> u64 {
        self.clients.iter().map(|c| c.restore_dedup_skipped_bytes()).sum()
    }

    /// Clean restore failures over the whole run (pulls of departed users,
    /// hard-deleted manifests).
    pub fn total_restore_failures(&self) -> usize {
        self.clients.iter().map(|c| c.restore_failures()).sum()
    }

    /// Restore goodput per access link in bits per simulated second
    /// (restored plaintext of the link's pullers over the slowest of them),
    /// in first-appearance order. Links whose clients never pulled are
    /// omitted. On asymmetric links this is the *downstream* story the
    /// upload-side [`FleetRun::per_link_goodput_bps`] cannot tell.
    pub fn per_link_restore_goodput_bps(&self) -> Vec<(String, f64)> {
        self.grouped(|c| c.link.clone())
            .into_iter()
            .filter_map(|(name, members)| {
                let bytes: u64 = members.iter().map(|c| c.restored_logical_bytes()).sum();
                let slowest = members.iter().map(|c| c.restore_secs()).fold(0.0f64, f64::max);
                (slowest > 0.0 && bytes > 0).then(|| (name, bytes as f64 * 8.0 / slowest))
            })
            .collect()
    }

    /// Mean time-to-first-restored-byte per access link (seconds), over the
    /// pullers that actually moved payload, in first-appearance order.
    pub fn per_link_restore_ttfb_secs(&self) -> Vec<(String, f64)> {
        self.grouped(|c| c.link.clone())
            .into_iter()
            .filter_map(|(name, members)| {
                let samples: Vec<f64> =
                    members.iter().filter_map(|c| c.first_restore_ttfb_secs()).collect();
                (!samples.is_empty())
                    .then(|| (name, samples.iter().sum::<f64>() / samples.len() as f64))
            })
            .collect()
    }

    /// Every sync's `[start, completion)` interval on the shared virtual
    /// axis, across all clients — the raw material of the concurrency
    /// analysis.
    pub fn sync_intervals(&self) -> Vec<(SimTime, SimTime)> {
        self.clients
            .iter()
            .flat_map(|c| c.outcomes.iter())
            .map(|o| (o.sync_started_at, o.completed_at))
            .collect()
    }

    /// Per-round concurrency high-water mark: the most syncs in flight at
    /// any virtual instant. Lock-step fleets peak near the fleet size;
    /// arrival jitter and idle rounds spread the load and lower the peak.
    pub fn sync_concurrency_peak(&self) -> usize {
        cloudsim_trace::series::concurrency_peak(&self.sync_intervals())
    }

    /// Distribution of paper-style sync start-up delays (modification to
    /// sync start), one sample per activated round across the fleet.
    pub fn startup_delay_stats(&self) -> SampleStats {
        let samples: Vec<f64> = self.clients.iter().flat_map(|c| c.startup_delays_secs()).collect();
        SampleStats::from_samples(&samples).unwrap_or(SampleStats::zero())
    }

    /// Spread of first-sync start times across the fleet in simulated
    /// seconds (latest minus earliest). Zero for a lock-step fleet of
    /// identical clients; arrival jitter pulls it apart.
    pub fn first_sync_spread_secs(&self) -> f64 {
        let starts: Vec<SimTime> =
            self.clients.iter().filter_map(|c| c.first_sync_started_at()).collect();
        match (starts.iter().min(), starts.iter().max()) {
            (Some(min), Some(max)) => (*max - *min).as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Connected-but-idle rounds across the whole fleet.
    pub fn total_idle_rounds(&self) -> usize {
        self.clients.iter().map(|c| c.idle_rounds).sum()
    }

    /// Activated sync rounds across the whole fleet.
    pub fn total_synced_rounds(&self) -> usize {
        self.clients.iter().map(|c| c.synced_rounds()).sum()
    }

    /// Control-plane wire bytes (login, metadata, keep-alive polling)
    /// summed over every client — the background half of the
    /// background-vs-payload split.
    pub fn total_background_wire_bytes(&self) -> u64 {
        self.clients.iter().map(|c| c.background_wire_bytes).sum()
    }

    /// Storage-flow wire bytes summed over every client — the payload half
    /// of the split.
    pub fn total_payload_wire_bytes(&self) -> u64 {
        self.clients.iter().map(|c| c.payload_wire_bytes).sum()
    }

    /// Fraction of all wire bytes that were background signalling, in
    /// `[0, 1]`. 0.0 for a run that moved no bytes at all — never NaN.
    pub fn background_fraction(&self) -> f64 {
        let background = self.total_background_wire_bytes() as f64;
        let total = background + self.total_payload_wire_bytes() as f64;
        if total > 0.0 {
            background / total
        } else {
            0.0
        }
    }

    /// Distribution of per-sync commit durations (sync start to upload
    /// completion) across every activated round of every client. Clients
    /// are visited in index order and the histogram's buckets are fixed, so
    /// the result is bit-identical across worker counts and reruns.
    pub fn sync_duration_histogram(&self) -> LatencyHistogram {
        self.clients
            .iter()
            .flat_map(|c| c.outcomes.iter())
            .map(|o| o.completed_at - o.sync_started_at)
            .collect()
    }

    /// Distribution of end-to-end restore durations (request to completion)
    /// across every restore operation of every client.
    pub fn restore_duration_histogram(&self) -> LatencyHistogram {
        self.clients
            .iter()
            .flat_map(|c| c.restores.iter())
            .map(|r| r.completed_at - r.requested_at)
            .collect()
    }

    /// Distribution of every backoff wait the fleet's faulted transfers
    /// slept. Merging per-client histograms is order-independent, so the
    /// result is bit-identical however the fleet was parallelised. Empty
    /// for a fault-free run.
    pub fn backoff_histogram(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for client in &self.clients {
            merged.merge(&client.backoff_waits);
        }
        merged
    }

    /// Merged fault-recovery accounting over every client. All-zero for a
    /// fault-free run.
    pub fn fault_stats(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for client in &self.clients {
            total.merge(&client.fault_stats);
        }
        total
    }

    /// Payload bytes the fleet durably committed. Equals
    /// [`FleetRun::total_uploaded_payload`] when nothing was abandoned.
    pub fn total_committed_payload(&self) -> u64 {
        self.clients.iter().map(|c| c.committed_payload).sum()
    }

    /// Chunks abandoned fleet-wide after retry budgets ran out.
    pub fn total_abandoned_chunks(&self) -> usize {
        self.clients.iter().map(|c| c.abandoned_chunks).sum()
    }

    /// Files abandoned mid-restore fleet-wide.
    pub fn total_abandoned_restores(&self) -> usize {
        self.clients.iter().map(|c| c.abandoned_restores).sum()
    }

    /// Fraction of planned upload payload that became durable, in `[0, 1]`.
    /// 1.0 for a fault-free (or fully recovered) run with payload; 0.0 for
    /// a run that planned nothing — never NaN.
    pub fn committed_fraction(&self) -> f64 {
        let planned = self.total_uploaded_payload();
        if planned > 0 {
            self.total_committed_payload() as f64 / planned as f64
        } else {
            0.0
        }
    }

    /// Fraction of all wire bytes that bought no durable progress, in
    /// `[0, 1]`. 0.0 for a fault-free run — never NaN.
    pub fn wasted_bytes_ratio(&self) -> f64 {
        let wire = (self.total_payload_wire_bytes() + self.total_background_wire_bytes()) as f64;
        if wire > 0.0 {
            self.fault_stats().wasted_bytes as f64 / wire
        } else {
            0.0
        }
    }

    fn grouped<K: Fn(&ClientSummary) -> String>(
        &self,
        key: K,
    ) -> Vec<(String, Vec<&ClientSummary>)> {
        let mut groups: Vec<(String, Vec<&ClientSummary>)> = Vec::new();
        for client in &self.clients {
            let k = key(client);
            match groups.iter_mut().find(|(name, _)| *name == k) {
                Some((_, members)) => members.push(client),
                None => groups.push((k, vec![client])),
            }
        }
        groups
    }
}

/// One client's live state across rounds.
struct LiveClient {
    client: SyncClient,
    sim: Simulator,
    outcomes: Vec<SyncOutcome>,
    restores: Vec<RestoreOutcome>,
    first_modification: Option<SimTime>,
    next_modification: SimTime,
    deleted_manifests: usize,
    idle_rounds: usize,
    committed_payload: u64,
    abandoned_chunks: usize,
    abandoned_restores: usize,
    fault_stats: FaultStats,
    backoff_waits: LatencyHistogram,
}

fn spawn_client(spec: &FleetSpec, store: &ObjectStore, i: usize, round: usize) -> LiveClient {
    let slot = &spec.slots[i];
    let user = spec.user(i);
    // Each fleet client occupies one OS thread, so its upload pipeline runs
    // sequentially — nesting per-chunk fan-outs inside the per-client fan-out
    // would oversubscribe the host (plans are byte-identical either way).
    let mut client = SyncClient::for_user_on_link(
        slot.profile.clone(),
        UploadPipeline::sequential(),
        store.clone(),
        &user,
        &slot.link,
    );
    let mut sim = Simulator::new(spec.derived_seed(i as u64, u64::MAX, 0));
    let epoch = SimTime::from_secs(round as u64 * ROUND_EPOCH_SECS);
    let login_done = client.login(&mut sim, epoch);
    LiveClient {
        client,
        sim,
        outcomes: Vec::new(),
        restores: Vec::new(),
        first_modification: None,
        next_modification: login_done + SimDuration::from_secs(5),
        deleted_manifests: 0,
        idle_rounds: 0,
        committed_payload: 0,
        abandoned_chunks: 0,
        abandoned_restores: 0,
        fault_stats: FaultStats::default(),
        backoff_waits: LatencyHistogram::new(),
    }
}

/// One client's restore fan for one round: pull every source user's full
/// namespace. Store reads only — the round's sync barrier already happened,
/// so every puller sees the same server state regardless of thread order.
/// With fault injection, each pull runs under its own seeded outage
/// schedule (anchored at the pull's start) through the ranged resumable
/// download path.
fn restore_round(spec: &FleetSpec, lc: &mut LiveClient, i: usize, round: usize) {
    for (k, &src) in spec.slots[i].pull_from.iter().enumerate() {
        let owner = spec.user(src);
        let at = lc.next_modification;
        let outcome = match &spec.faults {
            None => lc.client.restore_user(&mut lc.sim, &owner, at),
            Some(faults) => {
                let schedule_seed =
                    spec.derived_seed(i as u64, RESTORE_FAULT_SALT + 2 * k as u64, round as u64);
                let schedule = FaultSchedule::generate(&faults.spec, schedule_seed)
                    .shifted(at.saturating_since(SimTime::ZERO));
                let retry_seed =
                    spec.derived_seed(i as u64, RESTORE_RETRY_SALT + 2 * k as u64, round as u64);
                let policy = faults.retry.policy();
                let faulted = lc.client.restore_user_faulted(
                    &mut lc.sim,
                    &owner,
                    at,
                    &schedule,
                    policy.as_ref(),
                    retry_seed,
                );
                lc.abandoned_restores += faulted.files_abandoned;
                lc.fault_stats.merge(&faulted.stats);
                lc.backoff_waits.merge(&faulted.backoff_waits);
                faulted.outcome
            }
        };
        lc.next_modification = outcome.completed_at + SimDuration::from_secs(2);
        lc.restores.push(outcome);
    }
}

/// One activated sync: the client's clock advances by its seeded think-time
/// pause and arrival jitter before the batch lands in the synced folder, so
/// arrivals spread across the round instead of hitting a shared barrier.
/// With the legacy all-zero temporal config this is exactly the old
/// chained `next_modification` timeline.
fn sync_round(spec: &FleetSpec, lc: &mut LiveClient, i: usize, activation: &SyncActivation) {
    let files = spec.workload_for(i, activation);
    let at = lc.next_modification + activation.think + activation.arrival_jitter;
    let outcome = match &spec.faults {
        None => {
            let outcome = lc.client.sync_batch(&mut lc.sim, &files, at);
            // Fault-free, everything planned is durable.
            lc.committed_payload += outcome.uploaded_payload;
            outcome
        }
        Some(faults) => {
            // The outage schedule is anchored at this activation's start, so
            // every transfer window of the run gets its own seeded failures.
            let schedule_seed =
                spec.derived_seed(i as u64, SYNC_FAULT_SALT, activation.round as u64);
            let schedule = FaultSchedule::generate(&faults.spec, schedule_seed)
                .shifted(at.saturating_since(SimTime::ZERO));
            let retry_seed = spec.derived_seed(i as u64, SYNC_RETRY_SALT, activation.round as u64);
            let policy = faults.retry.policy();
            let faulted = lc.client.sync_batch_faulted(
                &mut lc.sim,
                &files,
                at,
                &schedule,
                policy.as_ref(),
                retry_seed,
            );
            lc.committed_payload += faulted.committed_payload;
            lc.abandoned_chunks += faulted.abandoned_chunks;
            lc.fault_stats.merge(&faulted.stats);
            lc.backoff_waits.merge(&faulted.backoff_waits);
            faulted.outcome
        }
    };
    lc.next_modification = outcome.completed_at + SimDuration::from_secs(2);
    if lc.first_modification.is_none() {
        lc.first_modification = Some(outcome.modification_time);
    }
    lc.outcomes.push(outcome);
}

/// One idle round: the client stays connected for the round's span of
/// virtual time and pays only the §3.1 keep-alive signalling its profile
/// prescribes. The store is untouched.
fn idle_round(lc: &mut LiveClient) {
    let until = lc.next_modification + SimDuration::from_secs(ROUND_EPOCH_SECS);
    lc.client.idle_until(&mut lc.sim, until);
    lc.next_modification = until;
    lc.idle_rounds += 1;
}

fn summarize(
    spec: &FleetSpec,
    i: usize,
    lc: LiveClient,
    left_after: Option<usize>,
) -> ClientSummary {
    let slot = &spec.slots[i];
    // A client the schedule never activated (always idle) has no syncs: it
    // reports a zero completion span, not a panic — the distributions
    // upstream exclude it from their denominators.
    let completion_secs = match (lc.first_modification, lc.outcomes.last()) {
        (Some(first), Some(last)) => (last.completed_at - first).as_secs_f64(),
        _ => 0.0,
    };
    let trace = lc.sim.trace();
    let background_wire_bytes: u64 =
        FlowKind::ALL.iter().filter(|k| k.is_control_plane()).map(|k| trace.wire_bytes(*k)).sum();
    ClientSummary {
        user: spec.user(i),
        service: slot.profile.name().to_string(),
        link: slot.link.name.to_string(),
        join_round: slot.join_round,
        left_after,
        deleted_manifests: lc.deleted_manifests,
        idle_rounds: lc.idle_rounds,
        completion_secs,
        logical_bytes: lc.outcomes.iter().map(|o| o.logical_bytes).sum(),
        uploaded_payload: lc.outcomes.iter().map(|o| o.uploaded_payload).sum(),
        background_wire_bytes,
        payload_wire_bytes: trace.wire_bytes(FlowKind::Storage),
        committed_payload: lc.committed_payload,
        abandoned_chunks: lc.abandoned_chunks,
        abandoned_restores: lc.abandoned_restores,
        fault_stats: lc.fault_stats,
        backoff_waits: lc.backoff_waits,
        outcomes: lc.outcomes,
        restores: lc.restores,
    }
}

/// Runs one parallel event wave: takes each event's client out of
/// `states`, applies `work` on up to `workers` threads, and puts the
/// results back — the engine-level analogue of the old per-round phase
/// barrier. Clients within a wave are pairwise distinct (the heap
/// guarantees it), so the fan-out never aliases a state slot. `work`
/// receives the client's prior state (`None` when the client has not been
/// spawned yet) and must return the live client.
fn run_wave<F>(states: &mut [Option<LiveClient>], events: &[FleetEvent], workers: usize, work: F)
where
    F: Fn(Option<LiveClient>, &FleetEvent) -> LiveClient + Sync,
{
    if events.is_empty() {
        return;
    }
    let tasks: Vec<Mutex<Option<LiveClient>>> =
        events.iter().map(|e| Mutex::new(states[e.client].take())).collect();
    let done: Vec<LiveClient> = cloudsim_parallel::run_indexed(
        workers.min(events.len()),
        events.len(),
        || (),
        |(), k| work(tasks[k].lock().expect("task mutex").take(), &events[k]),
    );
    for (k, lc) in done.into_iter().enumerate() {
        states[events[k].client] = Some(lc);
    }
}

/// Runs the fleet on up to `workers` OS threads, committing into `store`,
/// replaying the spec's precomputed [`FleetSchedule`] through the
/// discrete-event engine: the schedule is lowered into a time-ordered
/// [`EventHeap`] (see [`crate::engine`]) and popped wave by wave, touching
/// only each event's client. `workers = 1` is the sequential replay; any
/// other count produces bit-identical [`ClientSummary`]s and aggregate
/// store statistics, because the heap's `(timestamp, phase, client)` total
/// order is derived before the first client spawns (the temporal draws are
/// data, not thread timing) and each wave holds pairwise-distinct clients
/// whose store operations commute: at one virtual instant all sync commits
/// complete before idle clients poll their own universes, before any
/// restore fan reads, before any leaving client releases references, and
/// mark-sweep GC sweeps on one thread.
pub fn run_fleet(spec: &FleetSpec, store: ObjectStore, workers: usize) -> FleetRun {
    spec.validate();
    let schedule = spec.schedule();
    let mut heap = EventHeap::derive(spec, &schedule);
    let started = std::time::Instant::now();
    let mut states: Vec<Option<LiveClient>> = spec.slots.iter().map(|_| None).collect();
    let mut summaries: Vec<Option<ClientSummary>> = spec.slots.iter().map(|_| None).collect();

    while let Some(wave) = heap.next_wave() {
        match wave.phase {
            // Sync wave: every activated client syncs one batch at its
            // scheduled virtual offset, in parallel. The store only sees
            // commits here, which commute. A client whose first event this
            // is spawns (and logs in) at its round's epoch.
            Phase::Sync => run_wave(&mut states, &wave.events, workers, |lc, ev| {
                let mut lc = lc.unwrap_or_else(|| spawn_client(spec, &store, ev.client, ev.round));
                let activation = *schedule.clients[ev.client]
                    .activation_in(ev.round)
                    .expect("sync event derived from an activation");
                sync_round(spec, &mut lc, ev.client, &activation);
                lc
            }),

            // Idle wave: connected clients the schedule did not activate
            // stay online and pay one epoch of keep-alive signalling. Each
            // client polls only its own simulated universe — no store
            // access — so the wave commutes trivially. A client whose
            // *first* connected round is idle still spawns here.
            Phase::Idle => run_wave(&mut states, &wave.events, workers, |lc, ev| {
                let mut lc = lc.unwrap_or_else(|| spawn_client(spec, &store, ev.client, ev.round));
                idle_round(&mut lc);
                lc
            }),

            // Restore wave (the heap orders it after the instant's syncs,
            // before any leave): pullers that synced fan their sources'
            // namespaces back down through their own links. The store is
            // only *read* here, and every puller observes the instant's
            // complete commits — reads commute, so concurrency stays
            // bit-exact. Sources that departed at an earlier instant fail
            // cleanly and are counted in the puller's summary.
            Phase::Restore => run_wave(&mut states, &wave.events, workers, |lc, ev| {
                let mut lc = lc.expect("puller synced this round");
                restore_round(spec, &mut lc, ev.client, ev.round);
                lc
            }),

            // Leave events (after the instant's syncs and restores):
            // departing clients hard-delete their manifests — even when
            // their final round was idle. The store only sees releases
            // here, executed sequentially in client order — they never
            // race the instant's commits.
            Phase::Leave => {
                for ev in &wave.events {
                    let mut lc = states[ev.client].take().expect("leaving client is live");
                    let at = lc.next_modification;
                    let (_, deleted) = lc.client.leave_service(&mut lc.sim, at);
                    lc.deleted_manifests = deleted;
                    summaries[ev.client] = Some(summarize(spec, ev.client, lc, Some(ev.round)));
                }
            }

            // GC sweep: under mark-sweep, a single-threaded periodic pass
            // per epoch. (Eager frees already happened inside the
            // releases.) The event fires unconditionally; the policy check
            // lives here because the store is the caller's, not the
            // spec's.
            Phase::Gc => {
                if store.gc_policy() == GcPolicy::MarkSweep {
                    store.collect_garbage();
                }
            }
        }
    }

    for (i, state) in states.into_iter().enumerate() {
        if let Some(lc) = state {
            summaries[i] = Some(summarize(spec, i, lc, None));
        }
    }
    let clients = summaries
        .into_iter()
        .map(|s| s.expect("every slot was connected in at least one round"))
        .collect();
    FleetRun { clients, store, elapsed: started.elapsed() }
}

/// Runs the fleet with one OS thread per client (capped at the host's
/// available parallelism) against a fresh sharded store using the spec's GC
/// policy.
pub fn run_fleet_concurrent(spec: &FleetSpec) -> FleetRun {
    let workers = cloudsim_parallel::available_workers().clamp(1, spec.clients().max(1));
    run_fleet(spec, ObjectStore::with_policy(spec.gc), workers)
}

/// Replays the same fleet sequentially on the calling thread against a fresh
/// sharded store — the determinism baseline concurrent runs are compared to.
pub fn run_fleet_sequential(spec: &FleetSpec) -> FleetRun {
    run_fleet(spec, ObjectStore::with_policy(spec.gc), 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(clients: usize) -> FleetSpec {
        FleetSpec::new(ServiceProfile::dropbox(), clients)
            .with_files(4, 16 * 1024)
            .with_batches(2)
            .with_seed(42)
    }

    fn hetero_spec(clients: usize) -> FleetSpec {
        small_spec(clients)
            .with_batches(4)
            .with_profiles(&[
                ServiceProfile::dropbox(),
                ServiceProfile::skydrive(),
                ServiceProfile::google_drive(),
            ])
            .with_links(&[AccessLink::fiber(), AccessLink::adsl(), AccessLink::mobile3g()])
            .with_churn(1, 2)
    }

    #[test]
    fn workloads_share_content_across_clients_but_not_private_files() {
        let spec = small_spec(3);
        let a = spec.workload(0, 0);
        let b = spec.workload(1, 0);
        assert_eq!(a.len(), 4);
        let shared = spec.shared_files_per_batch();
        assert_eq!(shared, 2);
        for f in 0..shared {
            assert_eq!(a[f].content, b[f].content, "shared file {f} must match across clients");
        }
        for f in shared..4 {
            assert_ne!(a[f].content, b[f].content, "private file {f} must differ");
        }
        // Rounds differ from each other even in the shared pool.
        assert_ne!(spec.workload(0, 0)[0].content, spec.workload(0, 1)[0].content);
        // Workload generation is deterministic.
        assert_eq!(spec.workload(2, 1), spec.workload(2, 1));
    }

    #[test]
    fn concurrent_fleet_matches_sequential_replay_bit_for_bit() {
        let spec = small_spec(6);
        let concurrent = run_fleet(&spec, ObjectStore::new(), 6);
        let sequential = run_fleet_sequential(&spec);
        assert_eq!(concurrent.clients, sequential.clients);
        assert_eq!(concurrent.aggregate(), sequential.aggregate());
        for summary in &concurrent.clients {
            assert_eq!(
                concurrent.store.stats(&summary.user),
                sequential.store.stats(&summary.user),
                "{} per-user stats must match",
                summary.user
            );
            assert_eq!(
                concurrent.store.list_files(&summary.user),
                sequential.store.list_files(&summary.user)
            );
        }
    }

    #[test]
    fn churning_heterogeneous_fleet_is_deterministic_under_concurrency() {
        // The tentpole acceptance: mixed services, mixed links, joins,
        // leaves and GC — still bit-identical to the sequential replay,
        // under both GC policies.
        for gc in [GcPolicy::Eager, GcPolicy::MarkSweep] {
            let spec = hetero_spec(7).with_gc(gc);
            let concurrent = run_fleet_concurrent(&spec);
            let sequential = run_fleet_sequential(&spec);
            assert_eq!(concurrent.clients, sequential.clients, "{gc:?}");
            assert_eq!(concurrent.aggregate(), sequential.aggregate(), "{gc:?}");
            assert!(concurrent.reclaimed_bytes() > 0, "{gc:?}: leavers must free bytes");
        }
    }

    #[test]
    fn churn_schedule_is_seed_deterministic_and_respects_bounds() {
        let spec = hetero_spec(7);
        assert_eq!(spec.slots, hetero_spec(7).slots);
        // Leavers at the front, joiners at the back, disjoint.
        assert!(spec.slots[0].leave_after.is_some());
        assert!(spec.slots[1].leave_after.is_some());
        assert!(spec.slots[6].join_round >= 1);
        for slot in &spec.slots {
            assert!(slot.join_round < spec.rounds);
            if let Some(l) = slot.leave_after {
                assert!(l >= slot.join_round && l < spec.rounds - 1);
            }
            assert!(slot.active_rounds(spec.rounds) >= 1);
        }
        // A different seed reshuffles the schedule, regardless of whether
        // the seed is set before or after with_churn (a later with_seed
        // re-derives the installed schedule).
        let reseeded = small_spec(7).with_batches(4).with_churn(3, 3).with_seed(1234);
        let baseline = small_spec(7).with_batches(4).with_churn(3, 3);
        assert_eq!(
            reseeded.slots,
            small_spec(7).with_batches(4).with_seed(1234).with_churn(3, 3).slots,
            "builder-call order must not change the schedule"
        );
        // Changing the round count after installing churn re-derives the
        // schedule for the new span instead of leaving stale rounds.
        let regrown = small_spec(7).with_batches(2).with_churn(3, 3).with_batches(8);
        for slot in &regrown.slots {
            assert!(slot.join_round < 8);
            if let Some(l) = slot.leave_after {
                assert!(l < 7, "leave_after {l} must precede the final round");
            }
        }
        assert_eq!(regrown.slots, small_spec(7).with_batches(8).with_churn(3, 3).slots);
        assert_ne!(
            reseeded.slots.iter().map(|s| (s.join_round, s.leave_after)).collect::<Vec<_>>(),
            baseline.slots.iter().map(|s| (s.join_round, s.leave_after)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn leavers_release_their_bytes_and_joiners_appear_late() {
        let spec = hetero_spec(7).with_gc(GcPolicy::Eager);
        let run = run_fleet_concurrent(&spec);
        assert_eq!(run.clients.len(), 7);

        let leaver = &run.clients[0];
        assert!(leaver.left_after.is_some());
        assert!(leaver.deleted_manifests > 0);
        // The departed user's namespace is gone from the store.
        assert!(run.store.list_files(&leaver.user).is_empty());
        assert_eq!(run.store.stats(&leaver.user).chunks, 0);

        let joiner = &run.clients[6];
        assert!(joiner.join_round >= 1);
        let expected_rounds = spec.slots[6].active_rounds(spec.rounds);
        assert_eq!(joiner.outcomes.len(), expected_rounds);

        // Residents stay for every round.
        let resident = &run.clients[3];
        assert_eq!(resident.outcomes.len(), spec.rounds);
        assert!(run.store.stats(&resident.user).chunks > 0);

        // Reclaimed bytes show up in the aggregate, and what the leavers
        // exclusively held really is gone.
        let agg = run.aggregate();
        assert!(agg.reclaimed_bytes > 0);
        assert!(agg.freed_chunks > 0);
        assert!(agg.manifest_deletes > 0);
    }

    #[test]
    fn mixed_links_slow_the_constrained_clients() {
        // Same service everywhere; only the access link differs. The ADSL
        // client (1 Mb/s up) must finish far behind the fibre client.
        let spec = FleetSpec::new(ServiceProfile::dropbox(), 2)
            .with_files(4, 256 * 1024)
            .with_seed(9)
            .with_links(&[AccessLink::fiber(), AccessLink::adsl()]);
        let run = run_fleet_concurrent(&spec);
        let fiber = &run.clients[0];
        let adsl = &run.clients[1];
        assert!(
            adsl.completion_secs > 3.0 * fiber.completion_secs,
            "adsl {}s vs fiber {}s",
            adsl.completion_secs,
            fiber.completion_secs
        );
        // The per-link breakdown reports both groups.
        let per_link = run.per_link_goodput_bps();
        assert_eq!(per_link.len(), 2);
        assert!(per_link.iter().all(|(_, bps)| *bps > 0.0));
    }

    #[test]
    fn per_service_breakdown_groups_mixed_fleets() {
        let spec =
            small_spec(6).with_profiles(&[ServiceProfile::dropbox(), ServiceProfile::skydrive()]);
        let run = run_fleet_concurrent(&spec);
        let per_service = run.per_service_completion();
        assert_eq!(per_service.len(), 2);
        assert_eq!(per_service[0].0, "Dropbox");
        assert_eq!(per_service[1].0, "SkyDrive");
        assert_eq!(per_service[0].1.count + per_service[1].1.count, 6);
        // SkyDrive's chatty protocol is slower on the same workload.
        assert!(per_service[1].1.mean > per_service[0].1.mean);
    }

    #[test]
    fn shared_content_is_deduplicated_across_users_server_side() {
        // Dropbox dedups client-side per user, but only the *server* can
        // collapse identical chunks across users.
        let spec = small_spec(8);
        let run = run_fleet_concurrent(&spec);
        let agg = run.aggregate();
        assert_eq!(agg.users, 8);
        assert!(agg.server_dedup_hits > 0, "shared files must produce inter-user dedup hits");
        assert!(
            agg.physical_bytes < agg.referenced_bytes,
            "physical {} should be below referenced {}",
            agg.physical_bytes,
            agg.referenced_bytes
        );
        assert!(run.dedup_ratio() > 1.2, "dedup ratio {}", run.dedup_ratio());
        // Every client uploaded its full logical volume (client-side dedup
        // does not apply across users), so goodput accounting is non-trivial.
        assert_eq!(run.total_logical_bytes(), spec.total_logical_bytes());
        assert!(run.aggregate_goodput_bps() > 0.0);
        assert!(run.completion_stats().count == 8);
    }

    #[test]
    fn dedup_ratio_grows_with_fleet_size() {
        // The multi-tenant observation the single-computer testbed cannot
        // make: the bigger the fleet, the more the shared pool collapses.
        let small = run_fleet_concurrent(&small_spec(2));
        let large = run_fleet_concurrent(&small_spec(12));
        assert!(
            large.dedup_ratio() > small.dedup_ratio(),
            "12-client ratio {} must exceed 2-client ratio {}",
            large.dedup_ratio(),
            small.dedup_ratio()
        );
    }

    #[test]
    fn mixed_service_fleets_share_one_store() {
        // Two fleets of different services committing into one store: the
        // store is service-agnostic, so the shared pool deduplicates across
        // the whole user population regardless of which client uploaded it.
        let store = ObjectStore::new();
        let dropbox =
            FleetSpec::new(ServiceProfile::dropbox(), 2).with_files(3, 8 * 1024).with_seed(7);
        let wuala = dropbox.clone().with_profiles(&[ServiceProfile::wuala()]);
        run_fleet(&dropbox, store.clone(), 2);
        let run = run_fleet(&wuala, store.clone(), 2);
        let agg = run.aggregate();
        // The second fleet re-uses the same user indices, so the population
        // stays at two namespaces and identical content collapses.
        assert_eq!(agg.users, 2);
        assert!(agg.server_dedup_hits > 0);
        assert!(agg.physical_bytes < agg.referenced_bytes);
    }

    #[test]
    fn empty_runs_report_zeroes_not_nans() {
        // The division guards of the ratio/goodput helpers: a run with no
        // clients (or an unmeasurably fast one) reports 0.0 everywhere.
        let run = FleetRun {
            clients: Vec::new(),
            store: ObjectStore::new(),
            elapsed: std::time::Duration::ZERO,
        };
        assert_eq!(run.aggregate_goodput_bps(), 0.0);
        assert_eq!(run.dedup_ratio(), 0.0);
        assert_eq!(run.wall_throughput_bps(), 0.0);
        assert_eq!(run.completion_stats().count, 0);
        assert!(run.per_service_completion().is_empty());
        assert!(run.per_link_goodput_bps().is_empty());
        assert!(run.aggregate_goodput_bps().is_finite());
        assert!(run.dedup_ratio().is_finite());
        assert!(run.wall_throughput_bps().is_finite());
    }

    fn pulling_spec(clients: usize) -> FleetSpec {
        small_spec(clients)
            .with_batches(3)
            .with_links(&[AccessLink::fiber(), AccessLink::adsl()])
            .with_restore_fan(2, 2)
    }

    #[test]
    fn restore_fans_mix_uploaders_and_downloaders_deterministically() {
        let spec = pulling_spec(6);
        // The fan is seeded: last two slots pull two distinct others each.
        for i in 0..4 {
            assert!(spec.slots[i].pull_from.is_empty(), "slot {i} is a pure uploader");
        }
        for i in 4..6 {
            let fan = &spec.slots[i].pull_from;
            assert_eq!(fan.len(), 2);
            assert!(!fan.contains(&i), "no self-pulls");
            assert_eq!(spec.slots, pulling_spec(6).slots, "fan must be seed-deterministic");
        }
        assert_ne!(
            pulling_spec(6).with_seed(99).slots[5].pull_from,
            pulling_spec(6).slots[5].pull_from,
            "a different seed reshuffles the fan"
        );

        let concurrent = run_fleet_concurrent(&spec);
        let sequential = run_fleet_sequential(&spec);
        assert_eq!(concurrent.clients, sequential.clients);
        assert_eq!(concurrent.aggregate(), sequential.aggregate());

        // Pullers restored every source round they saw; content moved.
        let total_restored = concurrent.total_restored_logical_bytes();
        assert!(total_restored > 0);
        assert!(concurrent.total_downloaded_payload() > 0);
        // The shared pool halves what must travel: private files download,
        // shared files are already local on every client.
        let saved = concurrent.restore_dedup_saved_bytes();
        assert!(saved > 0, "shared-pool chunks must be skipped on the down path");
        assert!(concurrent.total_downloaded_payload() < total_restored);
        assert_eq!(concurrent.total_restore_failures(), 0);

        // Per-link restore views cover exactly the pullers' links.
        let goodput = concurrent.per_link_restore_goodput_bps();
        assert!(!goodput.is_empty());
        assert!(goodput.iter().all(|(_, bps)| *bps > 0.0));
        let ttfb = concurrent.per_link_restore_ttfb_secs();
        assert!(ttfb.iter().all(|(_, s)| *s > 0.0));

        // Pure uploaders report empty restore accounting.
        assert_eq!(concurrent.clients[0].restores.len(), 0);
        assert_eq!(concurrent.clients[0].downloaded_payload(), 0);
    }

    #[test]
    fn pulling_a_departed_source_fails_cleanly_and_is_counted() {
        // Slot 0 leaves after round 0 (hard churn); slot 3 pulls slot 0
        // every round. Rounds 1.. find the namespace gone: clean failures,
        // identical under concurrency, and the store stays consistent.
        for gc in [GcPolicy::Eager, GcPolicy::MarkSweep] {
            let mut spec = small_spec(4).with_batches(3).with_gc(gc);
            spec.slots[0].leave_after = Some(0);
            spec.slots[3].pull_from = vec![0];
            let concurrent = run_fleet_concurrent(&spec);
            let sequential = run_fleet_sequential(&spec);
            assert_eq!(concurrent.clients, sequential.clients, "{gc:?}");
            assert_eq!(concurrent.aggregate(), sequential.aggregate(), "{gc:?}");

            let puller = &concurrent.clients[3];
            assert_eq!(puller.restores.len(), 3, "{gc:?}: one pull per round");
            // Round 0 succeeds (the source synced before leaving), the two
            // later rounds fail cleanly.
            assert!(puller.restores[0].files_restored > 0, "{gc:?}");
            assert_eq!(puller.restores[1].files_failed, 1, "{gc:?}");
            assert_eq!(puller.restores[2].files_failed, 1, "{gc:?}");
            assert_eq!(puller.restore_failures(), 2, "{gc:?}");
            // What round 0 pulled still counts.
            assert!(puller.restored_logical_bytes() > 0, "{gc:?}");

            // Counters stayed consistent: the failed restores mutated
            // nothing (u64 counters cannot go negative — what the assert
            // really checks is that no release ran twice), and the
            // surviving users' views still sum to the referenced total.
            let agg = concurrent.aggregate();
            let per_user: u64 =
                (0..4).map(|i| concurrent.store.stats(&spec.user(i)).stored_bytes).sum();
            assert_eq!(agg.referenced_bytes, per_user, "{gc:?}");
            assert!(agg.dedup_ratio().is_finite(), "{gc:?}");
            concurrent.store.collect_garbage();
            let swept = concurrent.store.aggregate();
            assert!(swept.physical_bytes <= agg.physical_bytes, "{gc:?}");
            assert_eq!(swept.referenced_bytes, per_user, "{gc:?}");
        }
    }

    #[test]
    fn repeat_pulls_of_unchanged_content_are_free() {
        // One uploader, one puller, two rounds. Round 0's pull downloads
        // bob's private content; round 1 re-uploads *new* content (rounds
        // differ), so the second pull downloads only the new revision — and
        // every chunk pulled in round 0 stays local.
        let mut spec = small_spec(2).with_batches(2);
        spec.slots[1].pull_from = vec![0];
        let run = run_fleet_sequential(&spec);
        let puller = &run.clients[1];
        assert_eq!(puller.restores.len(), 2);
        let first = &puller.restores[0];
        let second = &puller.restores[1];
        assert!(first.downloaded_payload > 0);
        // The second pull re-reads round 0's files from the local view and
        // downloads only round 1's fresh files.
        assert!(second.dedup_skipped_bytes >= first.logical_bytes);
        assert!(second.downloaded_payload <= first.downloaded_payload + second.logical_bytes);
    }

    #[test]
    fn always_idle_fleets_report_zero_distributions_not_nans() {
        // The 0-active-round edge case: activation 0.0 means every
        // connected round idles. The run completes, pays signalling, and
        // every ratio helper degrades to 0.0 instead of NaN.
        let spec = small_spec(3).with_activation(0.0);
        assert_eq!(spec.total_logical_bytes(), 0);
        for i in 0..3 {
            assert_eq!(spec.sync_rounds_of(i), 0);
            assert_eq!(spec.slots[i].active_rounds(spec.rounds), 2, "still connected");
        }
        let concurrent = run_fleet_concurrent(&spec);
        let sequential = run_fleet_sequential(&spec);
        assert_eq!(concurrent.clients, sequential.clients);
        for client in &concurrent.clients {
            assert!(client.outcomes.is_empty());
            assert_eq!(client.idle_rounds, 2);
            assert_eq!(client.completion_secs, 0.0);
            assert_eq!(client.logical_bytes, 0);
            assert!(client.background_wire_bytes > 0, "login + polls must signal");
            assert_eq!(client.payload_wire_bytes, 0);
        }
        assert_eq!(concurrent.completion_stats().count, 0);
        assert_eq!(concurrent.aggregate_goodput_bps(), 0.0);
        assert!(concurrent.aggregate_goodput_bps().is_finite());
        assert_eq!(concurrent.dedup_ratio(), 0.0);
        assert_eq!(concurrent.total_logical_bytes(), 0);
        assert_eq!(concurrent.total_idle_rounds(), 6);
        assert_eq!(concurrent.total_synced_rounds(), 0);
        assert!(concurrent.per_service_completion().is_empty());
        assert_eq!(concurrent.sync_concurrency_peak(), 0);
        assert_eq!(concurrent.first_sync_spread_secs(), 0.0);
        assert_eq!(concurrent.background_fraction(), 1.0);
        assert_eq!(concurrent.aggregate().physical_bytes, 0, "nothing was committed");
    }

    #[test]
    fn active_rounds_and_sync_denominators_handle_edges() {
        let slot = ClientSlot::resident(ServiceProfile::dropbox());
        assert_eq!(slot.active_rounds(0), 0, "zero-round runs have no active rounds");
        let mut late = slot.clone();
        late.join_round = 5;
        assert_eq!(late.active_rounds(3), 0, "a window beyond the run is empty");
        assert_eq!(late.active_rounds(6), 1);

        // Partial activation: the completion denominator is the schedule's
        // sync count, not the membership window.
        let spec = small_spec(4).with_batches(4).with_activation(0.5).with_seed(0xDECAF);
        let schedule = spec.schedule();
        let expected: u64 = (0..4).map(|i| spec.sync_rounds_of(i) as u64).sum();
        assert!(expected > 0, "p=0.5 over 16 draws should activate somewhere");
        assert!(expected < 16, "p=0.5 over 16 draws should idle somewhere (got {expected} syncs)");
        assert_eq!(schedule.total_sync_rounds() as u64, expected);
        let per_batch = spec.files_per_batch as u64 * spec.file_size as u64;
        assert_eq!(spec.total_logical_bytes(), expected * per_batch);
        let run = run_fleet_sequential(&spec);
        assert_eq!(run.total_logical_bytes(), spec.total_logical_bytes());
        assert_eq!(
            run.completion_stats().count,
            run.clients.iter().filter(|c| !c.outcomes.is_empty()).count()
        );
    }

    #[test]
    fn jittered_thinking_fleets_stay_bit_exact_under_concurrency() {
        // The tentpole's determinism acceptance: jitter, think time and
        // idle rounds enabled, concurrent still equals sequential exactly —
        // the schedule is data, not thread timing.
        let spec = small_spec(6)
            .with_batches(3)
            .with_think_time(ThinkTime::Exponential { mean: SimDuration::from_secs(7) })
            .with_arrival_jitter(SimDuration::from_secs(25))
            .with_activation(0.75);
        let concurrent = run_fleet(&spec, ObjectStore::new(), 6);
        let sequential = run_fleet_sequential(&spec);
        assert_eq!(concurrent.clients, sequential.clients);
        assert_eq!(concurrent.aggregate(), sequential.aggregate());
        assert_eq!(concurrent.sync_concurrency_peak(), sequential.sync_concurrency_peak());
        assert!(concurrent.total_synced_rounds() > 0);
    }

    #[test]
    fn think_time_and_jitter_stretch_the_timeline() {
        let base = small_spec(2);
        let slow = small_spec(2)
            .with_think_time(ThinkTime::Fixed(SimDuration::from_secs(30)))
            .with_arrival_jitter(SimDuration::from_secs(10));
        let fast = run_fleet_sequential(&base);
        let delayed = run_fleet_sequential(&slow);
        // Same content, same services: the pauses push sync starts out.
        for (f, d) in fast.clients.iter().zip(&delayed.clients) {
            assert_eq!(f.logical_bytes, d.logical_bytes);
            assert!(
                d.outcomes[0].modification_time > f.outcomes[0].modification_time,
                "think time must delay the first modification"
            );
        }
        // And the spread helper sees jitter pull first syncs apart: the
        // lock-step spread (sub-second seeded network noise only) is dwarfed
        // by a 40-second jitter bound.
        let jittered =
            run_fleet_sequential(&small_spec(4).with_arrival_jitter(SimDuration::from_secs(40)));
        let lockstep = run_fleet_sequential(&small_spec(4));
        assert!(lockstep.first_sync_spread_secs() < 1.0);
        assert!(
            jittered.first_sync_spread_secs() > lockstep.first_sync_spread_secs() + 1.0,
            "jittered spread {} vs lock-step {}",
            jittered.first_sync_spread_secs(),
            lockstep.first_sync_spread_secs()
        );
    }

    #[test]
    fn idle_rounds_defer_restore_fans_deterministically() {
        // A puller that idles a round defers its pulls along with its sync;
        // everything stays deterministic under churn + idling.
        let mut spec = small_spec(4).with_batches(3).with_activation(0.6).with_seed(0xBEEF);
        spec.slots[3].pull_from = vec![0];
        let concurrent = run_fleet_concurrent(&spec);
        let sequential = run_fleet_sequential(&spec);
        assert_eq!(concurrent.clients, sequential.clients);
        assert_eq!(concurrent.aggregate(), sequential.aggregate());
        let puller = &concurrent.clients[3];
        assert_eq!(
            puller.restores.len(),
            puller.outcomes.len(),
            "one pull per *synced* round, none while idle"
        );
    }

    /// A fleet whose transfers are slow enough (ADSL upstream) that the
    /// seeded outage windows reliably cut them mid-flight.
    fn faulted_spec(retry: RetryConfig) -> FleetSpec {
        let outages = FaultSpec {
            horizon: SimDuration::from_secs(30),
            outages: 4,
            min_outage: SimDuration::from_secs(2),
            max_outage: SimDuration::from_secs(6),
        };
        FleetSpec::new(ServiceProfile::dropbox(), 3)
            .with_files(4, 256 * 1024)
            .with_batches(2)
            .with_seed(0xFA57)
            .with_links(&[AccessLink::adsl()])
            .with_faults(FleetFaults { spec: outages, retry })
    }

    #[test]
    fn fault_injected_fleets_stay_bit_exact_under_concurrency() {
        // The tentpole's determinism acceptance for faults: the outage
        // schedules and retry draws are data derived from the master seed,
        // so a concurrent faulted run replays the sequential one exactly.
        let spec = faulted_spec(RetryConfig::standard_exponential());
        let concurrent = run_fleet(&spec, ObjectStore::new(), 3);
        let sequential = run_fleet_sequential(&spec);
        assert_eq!(concurrent.clients, sequential.clients);
        assert_eq!(concurrent.aggregate(), sequential.aggregate());
        assert_eq!(concurrent.fault_stats(), sequential.fault_stats());
        assert!(
            concurrent.fault_stats().interruptions > 0,
            "the outage windows must actually cut transfers"
        );
    }

    #[test]
    fn zero_retry_budget_commits_strictly_less_and_wastes_bytes() {
        // The acceptance pin: same seed, same outage schedules — a retry
        // budget of zero must report strictly lower committed payload and
        // nonzero wasted bytes versus exponential backoff.
        let zero = run_fleet_sequential(&faulted_spec(RetryConfig::with_budget(0)));
        let backoff = run_fleet_sequential(&faulted_spec(RetryConfig::standard_exponential()));

        assert!(zero.fault_stats().interruptions > 0);
        assert!(backoff.fault_stats().interruptions > 0);
        assert!(zero.fault_stats().wasted_bytes > 0, "abandoned progress is wasted wire");
        assert!(zero.total_abandoned_chunks() > 0);
        assert!(
            zero.total_committed_payload() < backoff.total_committed_payload(),
            "budget 0 committed {} vs exponential {}",
            zero.total_committed_payload(),
            backoff.total_committed_payload()
        );
        assert!(zero.committed_fraction() < 1.0);
        assert!(zero.wasted_bytes_ratio() > 0.0);

        // The backoff policy pays time instead of payload: everything
        // planned lands, at the price of retries and virtual backoff waits.
        assert_eq!(backoff.total_committed_payload(), backoff.total_uploaded_payload());
        assert_eq!(backoff.committed_fraction(), 1.0);
        assert_eq!(backoff.total_abandoned_chunks(), 0);
        assert!(backoff.fault_stats().retries > 0);
        assert!(backoff.fault_stats().salvaged_bytes > 0);
        assert!(backoff.fault_stats().backoff_wait > SimDuration::ZERO);
    }

    #[test]
    fn faulted_restore_fans_stay_deterministic_and_validate_checksums() {
        let mut spec = faulted_spec(RetryConfig::standard_exponential());
        spec.slots[2].pull_from = vec![0];
        let concurrent = run_fleet(&spec, ObjectStore::new(), 3);
        let sequential = run_fleet_sequential(&spec);
        assert_eq!(concurrent.clients, sequential.clients);
        assert_eq!(concurrent.aggregate(), sequential.aggregate());
        let stats = concurrent.fault_stats();
        assert!(stats.checksums_verified > 0, "completed restores must be validated");
        assert_eq!(stats.checksum_failures, 0, "reassembly must be byte-exact");
        assert_eq!(concurrent.total_abandoned_restores(), 0, "backoff recovers the pulls");
    }

    #[test]
    fn fault_free_fleets_report_committed_equals_uploaded_and_clean_stats() {
        let run = run_fleet_sequential(&small_spec(3));
        assert_eq!(run.total_committed_payload(), run.total_uploaded_payload());
        assert_eq!(run.committed_fraction(), 1.0);
        assert_eq!(run.wasted_bytes_ratio(), 0.0);
        assert!(run.fault_stats().is_clean());
        assert_eq!(run.total_abandoned_chunks(), 0);
        for client in &run.clients {
            assert_eq!(client.committed_payload, client.uploaded_payload);
            assert_eq!(client.fault_stats, FaultStats::default());
        }
    }

    #[test]
    #[should_panic(expected = "activation probability must be within [0, 1]")]
    fn out_of_range_activation_is_rejected() {
        let _ = small_spec(2).with_activation(1.5);
    }

    #[test]
    #[should_panic(expected = "a fleet needs at least one client")]
    fn empty_fleets_are_rejected() {
        let spec = FleetSpec::heterogeneous(Vec::new());
        run_fleet(&spec, ObjectStore::new(), 1);
    }

    #[test]
    #[should_panic(expected = "churn needs at least two rounds")]
    fn churn_requires_multiple_rounds() {
        let _ = small_spec(4).with_batches(1).with_churn(1, 1);
    }
}
