//! The discrete-event fleet engine: a time-ordered event heap replacing
//! round barriers.
//!
//! The round-major fleet loop materialised the whole population every round
//! — partition the clients, fan out a sync phase, a barrier, an idle phase,
//! a barrier, … — which caps fleets at the size the per-round bookkeeping
//! can afford. This module turns the same computation inside out: the
//! precomputed [`FleetSchedule`] (pure data since PR 5) is lowered into a
//! flat list of [`FleetEvent`]s — activations, keep-alive epochs,
//! restore-fan pulls, departures, GC sweeps — ordered by
//! `(timestamp, phase, client id)` on a binary heap, and the driver pops
//! them one at a time, touching only the event's client.
//!
//! ## Determinism
//!
//! The heap order is a *total* order: ties at equal timestamps resolve by
//! phase first (syncs before idles before restores before leaves before GC,
//! mirroring the old intra-round phase separation) and then by client id,
//! so two derivations of the same schedule replay the same event sequence
//! whatever the insertion order was. The legacy lock-step configuration
//! degenerates to exactly the old round-major timeline: every round's
//! events share one epoch timestamp, so the heap emits the old sync → idle
//! → restore → leave → GC phases in the old client order, and the committed
//! `fig6.*`/`fleet8.*`/`hetero.*`/`schedule.*`/`restore.*`/`faults.*`
//! baselines replay byte-identically (`to_bits()` equality, asserted in the
//! bench crate).
//!
//! ## Waves
//!
//! Popping strictly one event at a time would serialise clients that are
//! mutually independent. [`EventHeap::next_wave`] therefore pops a
//! *wave*: the maximal run of consecutive same-phase events in which every
//! client appears at most once. Within a wave the per-client simulations
//! are independent and the shared store's aggregate accounting is
//! order-independent (commits and reads commute), so a wave may execute on
//! any number of worker threads and still produce bit-identical results —
//! the engine-level analogue of the old phase barrier, without the
//! per-round materialisation.
//!
//! ```
//! use cloudsim_services::engine::{EventHeap, FleetEvent, Phase};
//! use cloudsim_trace::SimTime;
//!
//! let mut heap = EventHeap::from_events(vec![
//!     FleetEvent { at: SimTime::from_secs(60), phase: Phase::Sync, client: 0, round: 1 },
//!     FleetEvent { at: SimTime::ZERO, phase: Phase::Sync, client: 1, round: 0 },
//!     FleetEvent { at: SimTime::ZERO, phase: Phase::Sync, client: 0, round: 0 },
//! ]);
//! let wave = heap.next_wave().expect("three events queued");
//! // Ties at t=0 resolve by client id, and client 0's later event cannot
//! // join the wave because the client already appears in it.
//! assert_eq!(wave.clients(), vec![0, 1]);
//! assert_eq!(heap.next_wave().expect("one event left").clients(), vec![0]);
//! assert!(heap.next_wave().is_none());
//! ```

use crate::fleet::{FleetSpec, ROUND_EPOCH_SECS};
use crate::schedule::{FleetSchedule, RoundEvent};
use cloudsim_trace::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What kind of work a [`FleetEvent`] performs when it fires.
///
/// The discriminant order *is* the intra-timestamp execution order: at one
/// virtual instant all syncs run before all idles, before all restores,
/// before all leaves, before the GC sweep — exactly the phase separation
/// the round-major loop enforced with barriers. Restores must observe the
/// timestamp's completed commits, leaves must not race them, and GC runs
/// after the releases it is meant to collect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// The client activates and syncs one batch into the shared store.
    Sync,
    /// The client stays connected and pays one epoch of keep-alive
    /// signalling; its own simulated universe only, no store access.
    Idle,
    /// The client pulls its restore fan's source namespaces back down
    /// (store reads only).
    Restore,
    /// The client departs and hard-deletes its manifests (store releases).
    Leave,
    /// The periodic single-threaded garbage-collection sweep. Not tied to a
    /// client; the driver runs it only when the store's policy is
    /// mark-sweep.
    Gc,
}

/// Sentinel client id for events that do not belong to any client
/// ([`Phase::Gc`] sweeps). Sorts after every real client at its timestamp
/// and phase, which is irrelevant in practice: a sweep is alone in its
/// phase slot.
pub const NO_CLIENT: usize = usize::MAX;

/// One entry of the event heap: fire `phase` for `client` at virtual time
/// `at`. `round` carries the schedule round the event was derived from, so
/// the driver can look up the activation (and spawn a client at the right
/// login epoch) without a reverse search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetEvent {
    /// Virtual instant the event fires at.
    pub at: SimTime,
    /// What the event does.
    pub phase: Phase,
    /// The client the event touches ([`NO_CLIENT`] for GC sweeps).
    pub client: usize,
    /// The schedule round the event was derived from.
    pub round: usize,
}

impl FleetEvent {
    /// The total-order key: `(timestamp, phase, client id)`, with the
    /// round as a final disambiguator so the order is total even if two of
    /// a client's seeded instants ever collide to the same microsecond —
    /// two events of one schedule never compare equal unless they are the
    /// same event.
    pub fn key(&self) -> (SimTime, Phase, usize, usize) {
        (self.at, self.phase, self.client, self.round)
    }
}

impl Ord for FleetEvent {
    fn cmp(&self, other: &FleetEvent) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl PartialOrd for FleetEvent {
    fn partial_cmp(&self, other: &FleetEvent) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A maximal run of consecutive same-phase events with pairwise-distinct
/// clients, popped off the heap as one unit. See the module docs for why a
/// wave may execute in parallel without breaking bit-identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventWave {
    /// The phase every event of the wave shares.
    pub phase: Phase,
    /// The wave's events, in heap (= key) order.
    pub events: Vec<FleetEvent>,
}

impl EventWave {
    /// The client ids of the wave, in event order (pairwise distinct by
    /// construction).
    pub fn clients(&self) -> Vec<usize> {
        self.events.iter().map(|e| e.client).collect()
    }
}

/// The time-ordered event heap the fleet driver pops.
///
/// A thin wrapper over a min-[`BinaryHeap`] keyed by [`FleetEvent::key`].
/// Derive one from a spec and its schedule with [`EventHeap::derive`], or
/// build one from an explicit event list with [`EventHeap::from_events`]
/// (the fleet-scale runner does the latter with analytically drawn
/// activation instants).
#[derive(Debug, Default)]
pub struct EventHeap {
    heap: BinaryHeap<Reverse<FleetEvent>>,
}

impl EventHeap {
    /// An empty heap.
    pub fn new() -> EventHeap {
        EventHeap::default()
    }

    /// A heap preloaded with `events` (any order; the heap sorts).
    pub fn from_events(events: Vec<FleetEvent>) -> EventHeap {
        EventHeap { heap: events.into_iter().map(Reverse).collect() }
    }

    /// Lowers a spec's precomputed schedule into the full event list:
    ///
    /// * one [`Phase::Sync`] event per activation, at its round's epoch;
    /// * one [`Phase::Restore`] event per activation of a slot with a
    ///   restore fan (the fan rides the activation — an idle client defers
    ///   its pulls along with its upload);
    /// * one [`Phase::Idle`] event per connected-but-idle round;
    /// * one [`Phase::Leave`] event at the slot's `leave_after` round;
    /// * one [`Phase::Gc`] event per round (the driver runs the sweep only
    ///   under a mark-sweep store, matching the old per-round policy
    ///   check).
    ///
    /// Pure data in, pure data out: deriving twice yields identical heaps,
    /// which is what makes heap-driven replay a pure function of
    /// `(FleetSpec, seed)` just like the schedule itself.
    pub fn derive(spec: &FleetSpec, schedule: &FleetSchedule) -> EventHeap {
        let epoch = |round: usize| SimTime::from_secs(round as u64 * ROUND_EPOCH_SECS);
        let mut events = Vec::new();
        for client in &schedule.clients {
            let slot = &spec.slots[client.slot];
            for event in &client.events {
                let round = event.round();
                match event {
                    RoundEvent::Sync(_) => {
                        events.push(FleetEvent {
                            at: epoch(round),
                            phase: Phase::Sync,
                            client: client.slot,
                            round,
                        });
                        if !slot.pull_from.is_empty() {
                            events.push(FleetEvent {
                                at: epoch(round),
                                phase: Phase::Restore,
                                client: client.slot,
                                round,
                            });
                        }
                    }
                    RoundEvent::Idle { .. } => events.push(FleetEvent {
                        at: epoch(round),
                        phase: Phase::Idle,
                        client: client.slot,
                        round,
                    }),
                }
            }
            if let Some(leave) = slot.leave_after {
                events.push(FleetEvent {
                    at: epoch(leave),
                    phase: Phase::Leave,
                    client: client.slot,
                    round: leave,
                });
            }
        }
        for round in 0..spec.rounds {
            events.push(FleetEvent {
                at: epoch(round),
                phase: Phase::Gc,
                client: NO_CLIENT,
                round,
            });
        }
        EventHeap::from_events(events)
    }

    /// Queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pushes one event.
    pub fn push(&mut self, event: FleetEvent) {
        self.heap.push(Reverse(event));
    }

    /// Pops the single next event in `(timestamp, phase, client)` order.
    pub fn pop(&mut self) -> Option<FleetEvent> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// The next event without popping it.
    pub fn peek(&self) -> Option<&FleetEvent> {
        self.heap.peek().map(|Reverse(e)| e)
    }

    /// Pops the next wave: the maximal run of consecutive same-phase events
    /// in which every client appears at most once. A repeated client ends
    /// the wave (its later event depends on its earlier one), as does a
    /// phase change (cross-phase order is the determinism contract).
    pub fn next_wave(&mut self) -> Option<EventWave> {
        let first = self.pop()?;
        let phase = first.phase;
        let mut seen: std::collections::HashSet<usize> = std::collections::HashSet::new();
        seen.insert(first.client);
        let mut events = vec![first];
        while let Some(next) = self.peek() {
            if next.phase != phase || seen.contains(&next.client) {
                break;
            }
            let next = self.pop().expect("peeked event is still queued");
            seen.insert(next.client);
            events.push(next);
        }
        Some(EventWave { phase, events })
    }
}

/// The number of waves [`EventHeap::next_wave`] would pop for `events`
/// given in heap (= key) order: a new wave starts on every phase change
/// and whenever a client repeats within the current wave. The partition
/// runner uses this to price wave fragmentation — how many more waves a
/// merged event stream splits into than the sum of its partitions' streams
/// — without re-driving a heap.
pub fn wave_count(events: &[FleetEvent]) -> usize {
    let mut waves = 0usize;
    let mut seen: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut phase: Option<Phase> = None;
    for ev in events {
        let breaks = match phase {
            None => true,
            Some(p) => p != ev.phase || seen.contains(&ev.client),
        };
        if breaks {
            waves += 1;
            seen.clear();
            phase = Some(ev.phase);
        }
        seen.insert(ev.client);
    }
    waves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ServiceProfile;

    fn event(at_secs: u64, phase: Phase, client: usize) -> FleetEvent {
        FleetEvent { at: SimTime::from_secs(at_secs), phase, client, round: 0 }
    }

    #[test]
    fn ties_at_equal_timestamps_resolve_by_client_id() {
        // Pinned: the total order at one instant and one phase is the
        // client id, whatever the insertion order.
        let mut heap = EventHeap::from_events(vec![
            event(5, Phase::Sync, 3),
            event(5, Phase::Sync, 0),
            event(5, Phase::Sync, 2),
            event(5, Phase::Sync, 1),
        ]);
        let popped: Vec<usize> = std::iter::from_fn(|| heap.pop()).map(|e| e.client).collect();
        assert_eq!(popped, vec![0, 1, 2, 3]);
    }

    #[test]
    fn phases_order_before_clients_at_one_instant() {
        let mut heap = EventHeap::from_events(vec![
            event(7, Phase::Gc, NO_CLIENT),
            event(7, Phase::Leave, 0),
            event(7, Phase::Restore, 9),
            event(7, Phase::Idle, 4),
            event(7, Phase::Sync, 9),
        ]);
        let phases: Vec<Phase> = std::iter::from_fn(|| heap.pop()).map(|e| e.phase).collect();
        assert_eq!(phases, vec![Phase::Sync, Phase::Idle, Phase::Restore, Phase::Leave, Phase::Gc]);
    }

    #[test]
    fn timestamps_dominate_phases_and_clients() {
        let mut heap = EventHeap::from_events(vec![
            event(60, Phase::Sync, 0),
            event(0, Phase::Gc, NO_CLIENT),
            event(0, Phase::Sync, 5),
        ]);
        let keys: Vec<(u64, Phase, usize)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.at.as_secs_f64() as u64, e.phase, e.client))
            .collect();
        assert_eq!(
            keys,
            vec![(0, Phase::Sync, 5), (0, Phase::Gc, NO_CLIENT), (60, Phase::Sync, 0)]
        );
    }

    #[test]
    fn waves_batch_distinct_clients_and_break_on_repeats_and_phase_changes() {
        let mut heap = EventHeap::from_events(vec![
            event(0, Phase::Sync, 0),
            event(0, Phase::Sync, 1),
            event(10, Phase::Sync, 2),
            event(20, Phase::Sync, 0), // repeat of client 0: new wave
            event(20, Phase::Idle, 3), // phase change: new wave
        ]);
        let waves: Vec<(Phase, Vec<usize>)> =
            std::iter::from_fn(|| heap.next_wave()).map(|w| (w.phase, w.clients())).collect();
        assert_eq!(
            waves,
            vec![(Phase::Sync, vec![0, 1, 2]), (Phase::Sync, vec![0]), (Phase::Idle, vec![3]),]
        );
    }

    #[test]
    fn wave_count_matches_the_heap_segmentation() {
        let events = vec![
            event(0, Phase::Sync, 0),
            event(0, Phase::Sync, 1),
            event(10, Phase::Sync, 2),
            event(20, Phase::Sync, 0),
            event(20, Phase::Idle, 3),
        ];
        let mut heap = EventHeap::from_events(events.clone());
        let popped = std::iter::from_fn(|| heap.next_wave()).count();
        let mut sorted = events;
        sorted.sort();
        assert_eq!(wave_count(&sorted), popped);
        assert_eq!(wave_count(&[]), 0);
    }

    #[test]
    fn derivation_is_pure_and_covers_the_whole_schedule() {
        let spec = FleetSpec::new(ServiceProfile::dropbox(), 4)
            .with_files(2, 8 * 1024)
            .with_batches(3)
            .with_seed(7)
            .with_activation(0.5);
        let schedule = spec.schedule();
        let mut a = EventHeap::derive(&spec, &schedule);
        let mut b = EventHeap::derive(&spec, &schedule);
        let drain = |h: &mut EventHeap| std::iter::from_fn(|| h.pop()).collect::<Vec<_>>();
        let (ea, eb) = (drain(&mut a), drain(&mut b));
        assert_eq!(ea, eb, "derivation must be a pure function of (spec, schedule)");
        // Every schedule entry surfaces as exactly one sync or idle event,
        // plus one GC event per round.
        let syncs = ea.iter().filter(|e| e.phase == Phase::Sync).count();
        let idles = ea.iter().filter(|e| e.phase == Phase::Idle).count();
        let gcs = ea.iter().filter(|e| e.phase == Phase::Gc).count();
        assert_eq!(syncs, schedule.total_sync_rounds());
        assert_eq!(idles, schedule.total_idle_rounds());
        assert_eq!(gcs, spec.rounds);
    }

    #[test]
    fn derivation_emits_restore_and_leave_events_for_the_configured_slots() {
        let spec = FleetSpec::new(ServiceProfile::dropbox(), 5)
            .with_files(2, 8 * 1024)
            .with_batches(4)
            .with_seed(11)
            .with_churn(0, 1)
            .with_restore_fan(1, 2);
        let schedule = spec.schedule();
        let mut heap = EventHeap::derive(&spec, &schedule);
        let events: Vec<FleetEvent> = std::iter::from_fn(|| heap.pop()).collect();
        let leaver = 0; // with_churn assigns leavers from slot 0 upward
        let puller = spec.slots.len() - 1; // restore fans from the last slot downward
        assert_eq!(
            events.iter().filter(|e| e.phase == Phase::Leave).map(|e| e.client).collect::<Vec<_>>(),
            vec![leaver]
        );
        let restores: Vec<usize> =
            events.iter().filter(|e| e.phase == Phase::Restore).map(|e| e.client).collect();
        assert!(!restores.is_empty(), "the puller syncs at least once in four rounds");
        assert!(restores.iter().all(|&c| c == puller));
        // Each restore event pairs a sync event of the same client and round.
        for e in events.iter().filter(|e| e.phase == Phase::Restore) {
            assert!(events
                .iter()
                .any(|s| s.phase == Phase::Sync && s.client == e.client && s.round == e.round));
        }
    }
}
