//! Versioned fleet-run captures and timing-faithful replay.
//!
//! The paper's methodology is *capture first, analyse later*: every claim is
//! derived from recorded traffic, and the same recording can be interrogated
//! against different questions. This module gives the fleet-scale runner the
//! same property. [`render_capture`] lowers a [`ScaleSpec`] into a compact,
//! versioned JSONL recording — one header line describing the population,
//! then one line per commit event `(timestamp, client, op, bytes, content
//! seeds)` in event-heap order. [`replay`] re-drives a parsed capture
//! through the same event heap and the same commit executor
//! ([`crate::scale`]), so:
//!
//! * **same-mix replay is bit-identical**: the capture stores exact
//!   microsecond instants and the exact content seeds, the replay rebuilds
//!   the same store keyspace and the same analytic timeline, and every
//!   derived metric reproduces to the bit — a CI leg `cmp`s the dumps;
//! * **cross-mix replay is the paper's A/B comparison**: the same recorded
//!   workload re-driven against a different access-link preset
//!   ([`ReplayMix::Link`]) or a different service's transfer behaviour
//!   ([`ReplayMix::Profile`] — a non-bundling service pays one access round
//!   trip per file instead of one per commit, the Fig. 3 story), isolating
//!   the remapped factor while holding the workload fixed.
//!
//! Everything is plain text with integer-only fields, so captures diff
//! cleanly and survive version control. The parser is hand-rolled over the
//! line grammar (the vendored `serde_json` is a serialiser only) and
//! rejects unknown format names and versions up front.

use crate::engine::{EventHeap, FleetEvent, Phase};
use crate::profile::ServiceProfile;
use crate::scale::{assemble_run, drive_waves, execute_transfer, scale_user, ScaleRun, ScaleSpec};
use cloudsim_net::AccessLink;
use cloudsim_storage::{GcPolicy, ObjectStore};
use cloudsim_trace::{SimDuration, SimTime};

/// The capture format's stable name, written into every header line.
pub const CAPTURE_FORMAT: &str = "cloudsim-fleet-capture";

/// The capture format version this build reads and writes.
pub const CAPTURE_VERSION: u64 = 1;

/// One recorded commit event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureEvent {
    /// The seeded virtual instant the commit was issued at.
    pub at: SimTime,
    /// Index of the issuing client.
    pub client: usize,
    /// The client's commit round.
    pub round: usize,
    /// Plaintext bytes the commit carries.
    pub bytes: u64,
    /// Per-file content seeds — replay commits the exact same hashes, so
    /// population-scale dedup reproduces too.
    pub content_seeds: Vec<u64>,
}

/// A parsed capture: the population header plus every event.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCapture {
    /// Clients in the recorded population (or in this slice of it).
    pub clients: usize,
    /// Global index of this capture's first client. `0` for a whole-run
    /// capture; a slice produced by [`slice_capture`] covers global clients
    /// `[client_base, client_base + clients)`. Events always carry global
    /// indices, so a slice replays the exact same store keyspace and link
    /// assignment as the clients' share of the unsliced run.
    pub client_base: usize,
    /// Commits each client performed.
    pub commits_per_client: usize,
    /// Files per commit.
    pub files_per_commit: usize,
    /// Plaintext size of each file in bytes.
    pub file_size: u64,
    /// Leading files of each commit drawn from the shared pool.
    pub shared_files_per_commit: usize,
    /// The virtual horizon of the recorded run.
    pub horizon: SimDuration,
    /// Access-link preset names, round-robin across clients.
    pub link_names: Vec<String>,
    /// The recorded run's master seed (provenance only — replay never
    /// redraws anything from it).
    pub seed: u64,
    /// Every commit event, in event-heap order.
    pub events: Vec<CaptureEvent>,
}

/// What a replay substitutes for the captured mix.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayMix {
    /// Replay against the captured link mix and transfer behaviour —
    /// reproduces the original run bit for bit.
    Original,
    /// Re-drive the captured workload with every client on one access-link
    /// preset.
    Link(AccessLink),
    /// Re-drive the captured workload with another service's transfer
    /// behaviour: a non-bundling service opens a connection per file, so a
    /// commit pays `files_per_commit` access round trips instead of one.
    Profile(ServiceProfile),
}

/// Lowers a [`ScaleSpec`] into its in-memory capture: the header fields
/// plus one [`CaptureEvent`] per commit in event-heap order. Pure function
/// of the spec — the recording *is* the run's input, bit for bit.
pub fn capture_of_spec(spec: &ScaleSpec) -> FleetCapture {
    let batch_bytes = spec.files_per_commit as u64 * spec.file_size;
    let mut events = Vec::with_capacity(spec.clients * spec.commits_per_client);
    let mut heap = spec.events();
    while let Some(ev) = heap.pop() {
        events.push(CaptureEvent {
            at: ev.at,
            client: ev.client,
            round: ev.round,
            bytes: batch_bytes,
            content_seeds: (0..spec.files_per_commit)
                .map(|f| spec.content_seed(ev.client, ev.round, f))
                .collect(),
        });
    }
    FleetCapture {
        clients: spec.clients,
        client_base: 0,
        commits_per_client: spec.commits_per_client,
        files_per_commit: spec.files_per_commit,
        file_size: spec.file_size,
        shared_files_per_commit: spec.shared_files_per_commit(),
        horizon: spec.horizon,
        link_names: spec.links.iter().map(|l| l.name.to_owned()).collect(),
        seed: spec.seed,
        events,
    }
}

/// Renders a capture (whole-run or slice) into the versioned JSONL text.
/// The `client_base` header field is written only when non-zero, so a
/// whole-run capture renders byte-identically to captures written by
/// builds that predate slicing.
pub fn render_fleet_capture(capture: &FleetCapture) -> String {
    let mut out = String::new();
    let links: Vec<String> = capture.link_names.iter().map(|l| format!("\"{l}\"")).collect();
    let base_field = if capture.client_base == 0 {
        String::new()
    } else {
        format!("\"client_base\":{},", capture.client_base)
    };
    out.push_str(&format!(
        "{{\"format\":\"{}\",\"version\":{},\"clients\":{},\"commits_per_client\":{},\
         \"files_per_commit\":{},\"file_size\":{},\"shared_files_per_commit\":{},{}\
         \"horizon_us\":{},\"seed\":{},\"links\":[{}]}}\n",
        CAPTURE_FORMAT,
        CAPTURE_VERSION,
        capture.clients,
        capture.commits_per_client,
        capture.files_per_commit,
        capture.file_size,
        capture.shared_files_per_commit,
        base_field,
        capture.horizon.as_micros(),
        capture.seed,
        links.join(",")
    ));

    for ev in &capture.events {
        let seeds: Vec<String> = ev.content_seeds.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "{{\"t_us\":{},\"client\":{},\"op\":\"sync\",\"round\":{},\"bytes\":{},\"content\":[{}]}}\n",
            ev.at.as_micros(),
            ev.client,
            ev.round,
            ev.bytes,
            seeds.join(",")
        ));
    }
    out
}

/// Renders the capture of the fleet-scale run `spec` describes: pure
/// function of the spec, so capturing never requires running the fleet
/// first — the recording *is* the run's input, bit for bit.
pub fn render_capture(spec: &ScaleSpec) -> String {
    render_fleet_capture(&capture_of_spec(spec))
}

/// Splits a capture into per-worker slices along `ranges` — capture-local,
/// half-open, contiguous client ranges that together cover `[0, clients)`.
/// Each slice is itself a valid capture (its `client_base` marks where it
/// sits in the global population, its events keep their global client
/// indices), so independent replays of the slices recombine bit-identically
/// to the unsliced run. [`merge_slices`] is the inverse.
pub fn slice_capture(
    capture: &FleetCapture,
    ranges: &[(usize, usize)],
) -> Result<Vec<FleetCapture>, String> {
    if ranges.is_empty() {
        return Err("slice_capture needs at least one range".into());
    }
    let mut expected_start = 0usize;
    for &(start, end) in ranges {
        if start != expected_start {
            return Err(format!(
                "slice ranges must be sorted, contiguous and cover [0, {}): \
                 expected a range starting at {expected_start}, got [{start}, {end})",
                capture.clients
            ));
        }
        if start >= end {
            return Err(format!("slice range [{start}, {end}) is empty"));
        }
        expected_start = end;
    }
    if expected_start != capture.clients {
        return Err(format!(
            "slice ranges cover [0, {expected_start}) but the capture holds {} clients",
            capture.clients
        ));
    }

    let mut slices: Vec<FleetCapture> = ranges
        .iter()
        .map(|&(start, end)| FleetCapture {
            clients: end - start,
            client_base: capture.client_base + start,
            commits_per_client: capture.commits_per_client,
            files_per_commit: capture.files_per_commit,
            file_size: capture.file_size,
            shared_files_per_commit: capture.shared_files_per_commit,
            horizon: capture.horizon,
            link_names: capture.link_names.clone(),
            seed: capture.seed,
            events: Vec::with_capacity((end - start) * capture.commits_per_client),
        })
        .collect();
    for ev in &capture.events {
        let local = ev.client - capture.client_base;
        let owner = ranges.partition_point(|&(_, end)| end <= local);
        slices[owner].events.push(ev.clone());
    }
    Ok(slices)
}

/// Recombines capture slices into the capture they were cut from: headers
/// must agree, the client ranges must tile a contiguous span, and the
/// per-slice event streams (each a subsequence of the original heap order)
/// are k-way merged back by `(timestamp, client, round)`. Order-independent
/// — any permutation of `slices` yields the identical capture.
pub fn merge_slices(slices: &[FleetCapture]) -> Result<FleetCapture, String> {
    if slices.is_empty() {
        return Err("merge_slices needs at least one slice".into());
    }
    let mut order: Vec<&FleetCapture> = slices.iter().collect();
    order.sort_by_key(|s| s.client_base);
    let first = order[0];
    let mut next_base = first.client_base;
    for slice in &order {
        let headers_agree = slice.commits_per_client == first.commits_per_client
            && slice.files_per_commit == first.files_per_commit
            && slice.file_size == first.file_size
            && slice.shared_files_per_commit == first.shared_files_per_commit
            && slice.horizon == first.horizon
            && slice.link_names == first.link_names
            && slice.seed == first.seed;
        if !headers_agree {
            return Err(format!(
                "slice at client_base {} disagrees with the slice at {} on its header",
                slice.client_base, first.client_base
            ));
        }
        if slice.client_base != next_base {
            return Err(format!(
                "slices do not tile: expected a slice at client_base {next_base}, got {}",
                slice.client_base
            ));
        }
        next_base += slice.clients;
    }

    let total: usize = order.iter().map(|s| s.events.len()).sum();
    let mut cursors = vec![0usize; order.len()];
    let mut events = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (i, slice) in order.iter().enumerate() {
            let Some(candidate) = slice.events.get(cursors[i]) else { continue };
            let beats = match best {
                None => true,
                Some(b) => {
                    let incumbent = &order[b].events[cursors[b]];
                    (candidate.at, candidate.client, candidate.round)
                        < (incumbent.at, incumbent.client, incumbent.round)
                }
            };
            if beats {
                best = Some(i);
            }
        }
        let Some(b) = best else { break };
        events.push(order[b].events[cursors[b]].clone());
        cursors[b] += 1;
    }

    Ok(FleetCapture {
        clients: next_base - first.client_base,
        client_base: first.client_base,
        commits_per_client: first.commits_per_client,
        files_per_commit: first.files_per_commit,
        file_size: first.file_size,
        shared_files_per_commit: first.shared_files_per_commit,
        horizon: first.horizon,
        link_names: first.link_names.clone(),
        seed: first.seed,
        events,
    })
}

/// Extracts the raw text of `"key":` in `line`, up to the next top-level
/// `,` or `}`.
fn raw_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let marker = format!("\"{key}\":");
    let start = line
        .find(&marker)
        .ok_or_else(|| format!("capture line is missing field \"{key}\": {line}"))?
        + marker.len();
    let rest = &line[start..];
    let mut depth = 0usize;
    let mut in_string = false;
    for (i, c) in rest.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            ',' | '}' if !in_string && depth == 0 => return Ok(rest[..i].trim()),
            _ => {}
        }
    }
    Err(format!("unterminated field \"{key}\": {line}"))
}

fn u64_field(line: &str, key: &str) -> Result<u64, String> {
    raw_field(line, key)?
        .parse::<u64>()
        .map_err(|e| format!("field \"{key}\" is not an integer ({e}): {line}"))
}

fn usize_field(line: &str, key: &str) -> Result<usize, String> {
    Ok(u64_field(line, key)? as usize)
}

fn str_field(line: &str, key: &str) -> Result<String, String> {
    let raw = raw_field(line, key)?;
    raw.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_owned)
        .ok_or_else(|| format!("field \"{key}\" is not a string: {line}"))
}

fn array_field(line: &str, key: &str) -> Result<Vec<String>, String> {
    let raw = raw_field(line, key)?;
    let inner = raw
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("field \"{key}\" is not an array: {line}"))?
        .trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    Ok(inner.split(',').map(|s| s.trim().to_owned()).collect())
}

fn u64_array_field(line: &str, key: &str) -> Result<Vec<u64>, String> {
    array_field(line, key)?
        .into_iter()
        .map(|s| {
            s.parse::<u64>()
                .map_err(|e| format!("field \"{key}\" holds a non-integer element ({e})"))
        })
        .collect()
}

/// Parses a capture rendered by [`render_capture`] (or by a newer build
/// writing the same version). Rejects unknown formats and versions, and
/// validates every event against the header so a truncated or hand-edited
/// capture fails loudly instead of replaying garbage.
pub fn parse_capture(text: &str) -> Result<FleetCapture, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("capture is empty")?;

    let format = str_field(header, "format")?;
    if format != CAPTURE_FORMAT {
        return Err(format!("unknown capture format \"{format}\" (expected \"{CAPTURE_FORMAT}\")"));
    }
    let version = u64_field(header, "version")?;
    if version != CAPTURE_VERSION {
        return Err(format!(
            "unsupported capture version {version} (this build reads version {CAPTURE_VERSION})"
        ));
    }

    let capture_header = (
        usize_field(header, "clients")?,
        usize_field(header, "commits_per_client")?,
        usize_field(header, "files_per_commit")?,
        u64_field(header, "file_size")?,
        usize_field(header, "shared_files_per_commit")?,
        u64_field(header, "horizon_us")?,
        u64_field(header, "seed")?,
        array_field(header, "links")?,
    );
    let (clients, commits_per_client, files_per_commit, file_size, shared, horizon_us, seed, links) =
        capture_header;
    // `client_base` was introduced alongside capture slicing; whole-run
    // captures omit it, so a missing field means base zero.
    let client_base =
        if header.contains("\"client_base\":") { usize_field(header, "client_base")? } else { 0 };
    if clients == 0 || commits_per_client == 0 || files_per_commit == 0 || file_size == 0 {
        return Err("capture header describes an empty population".into());
    }
    if links.is_empty() {
        return Err("capture header lists no access links".into());
    }
    let link_names: Result<Vec<String>, String> = links
        .into_iter()
        .map(|quoted| {
            quoted
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .map(str::to_owned)
                .ok_or_else(|| format!("link entry {quoted} is not a string"))
        })
        .collect();
    let link_names = link_names?;

    let expected_bytes = files_per_commit as u64 * file_size;
    let mut events = Vec::new();
    for line in lines {
        let op = str_field(line, "op")?;
        if op != "sync" {
            return Err(format!(
                "capture version {CAPTURE_VERSION} only records \"sync\" events, got \"{op}\""
            ));
        }
        let event = CaptureEvent {
            at: SimTime::from_micros(u64_field(line, "t_us")?),
            client: usize_field(line, "client")?,
            round: usize_field(line, "round")?,
            bytes: u64_field(line, "bytes")?,
            content_seeds: u64_array_field(line, "content")?,
        };
        if event.client < client_base || event.client - client_base >= clients {
            return Err(format!(
                "event client {} outside the header's [{client_base}, {}) range",
                event.client,
                client_base + clients
            ));
        }
        if event.round >= commits_per_client {
            return Err(format!(
                "event round {} outside the {commits_per_client}-commit header",
                event.round
            ));
        }
        if event.bytes != expected_bytes {
            return Err(format!(
                "event carries {} bytes but the header's commit is {expected_bytes} bytes",
                event.bytes
            ));
        }
        if event.content_seeds.len() != files_per_commit {
            return Err(format!(
                "event carries {} content seeds for a {files_per_commit}-file commit",
                event.content_seeds.len()
            ));
        }
        events.push(event);
    }
    if events.len() != clients * commits_per_client {
        return Err(format!(
            "capture holds {} events but the header promises {}",
            events.len(),
            clients * commits_per_client
        ));
    }

    Ok(FleetCapture {
        clients,
        client_base,
        commits_per_client,
        files_per_commit,
        file_size,
        shared_files_per_commit: shared,
        horizon: SimDuration::from_micros(horizon_us),
        link_names,
        seed,
        events,
    })
}

/// Re-drives a parsed capture through the event heap on up to `workers`
/// threads. [`ReplayMix::Original`] reproduces the recorded run bit for
/// bit; the other mixes substitute one factor and hold the workload fixed.
pub fn replay(capture: &FleetCapture, mix: &ReplayMix, workers: usize) -> Result<ScaleRun, String> {
    let links: Vec<AccessLink> = match mix {
        ReplayMix::Link(link) => vec![*link],
        ReplayMix::Original | ReplayMix::Profile(_) => capture
            .link_names
            .iter()
            .map(|name| {
                AccessLink::by_name(name)
                    .ok_or_else(|| format!("capture references unknown link preset \"{name}\""))
            })
            .collect::<Result<_, _>>()?,
    };
    let rtts_per_commit = match mix {
        ReplayMix::Profile(profile) if !profile.bundles() => capture.files_per_commit as u64,
        _ => 1,
    };

    // Content seeds keyed by capture-local (client, round) so the executor
    // can look an event's commit up without threading the capture through
    // the heap. Heap events are capture-local too (state records are a
    // dense per-slice array); the executor maps back to the global index
    // for the store keyspace and the round-robin link assignment, so a
    // slice replays exactly the clients' share of the unsliced run.
    let base = capture.client_base;
    let mut seeds: Vec<&[u64]> = vec![&[]; capture.clients * capture.commits_per_client];
    let mut heap_events = Vec::with_capacity(capture.events.len());
    for ev in &capture.events {
        let local = ev.client - base;
        seeds[local * capture.commits_per_client + ev.round] = &ev.content_seeds;
        heap_events.push(FleetEvent {
            at: ev.at,
            phase: Phase::Sync,
            client: local,
            round: ev.round,
        });
    }
    let heap = EventHeap::from_events(heap_events);

    let store = ObjectStore::with_policy(GcPolicy::MarkSweep);
    let started = std::time::Instant::now();
    let (states, intervals) = drive_waves(heap, capture.clients, workers, |ev, state| {
        let global = ev.client + base;
        execute_transfer(
            &store,
            &scale_user(global),
            &links[global % links.len()],
            ev.round,
            capture.files_per_commit,
            capture.file_size,
            capture.shared_files_per_commit,
            rtts_per_commit,
            ev.at,
            |f| seeds[ev.client * capture.commits_per_client + ev.round][f],
            state,
        )
    });
    let files = capture.clients as u64
        * capture.commits_per_client as u64
        * capture.files_per_commit as u64;
    Ok(assemble_run(capture.clients, files, &states, intervals, store, started))
}

/// [`replay`] with one worker per host core — the replay twin of
/// [`crate::scale::run_scale_concurrent`].
pub fn replay_concurrent(capture: &FleetCapture, mix: &ReplayMix) -> Result<ScaleRun, String> {
    replay(capture, mix, cloudsim_parallel::available_workers())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::run_scale_concurrent;

    fn small_spec() -> ScaleSpec {
        ScaleSpec::new(48).with_seed(0xCAB)
    }

    #[test]
    fn capture_roundtrips_through_the_parser() {
        let spec = small_spec();
        let text = render_capture(&spec);
        let capture = parse_capture(&text).expect("own capture must parse");
        assert_eq!(capture.clients, spec.clients);
        assert_eq!(capture.commits_per_client, spec.commits_per_client);
        assert_eq!(capture.file_size, spec.file_size);
        assert_eq!(capture.shared_files_per_commit, spec.shared_files_per_commit());
        assert_eq!(capture.horizon, spec.horizon);
        assert_eq!(capture.seed, spec.seed);
        assert_eq!(capture.link_names, vec!["campus", "fiber", "adsl", "3g"]);
        assert_eq!(capture.events.len(), spec.clients * spec.commits_per_client);
        // Events are recorded in heap order: timestamps never decrease.
        for pair in capture.events.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn same_mix_replay_is_bit_identical_to_the_original_run() {
        let spec = small_spec();
        let original = run_scale_concurrent(&spec);
        let capture = parse_capture(&render_capture(&spec)).unwrap();
        let replayed = replay_concurrent(&capture, &ReplayMix::Original).unwrap();

        assert_eq!(replayed.clients, original.clients);
        assert_eq!(replayed.commits, original.commits);
        assert_eq!(replayed.files, original.files);
        assert_eq!(replayed.logical_bytes, original.logical_bytes);
        assert_eq!(replayed.intervals, original.intervals);
        assert_eq!(replayed.aggregate(), original.aggregate());
        assert_eq!(replayed.dedup_ratio().to_bits(), original.dedup_ratio().to_bits());
        assert_eq!(replayed.commits_per_vsec().to_bits(), original.commits_per_vsec().to_bits());
        assert_eq!(replayed.load_curve(12), original.load_curve(12));
        for i in [0usize, 13, 47] {
            let user = scale_user(i);
            assert_eq!(replayed.store.stats(&user), original.store.stats(&user));
            assert_eq!(replayed.store.list_files(&user), original.store.list_files(&user));
        }
    }

    #[test]
    fn link_remap_shifts_timing_but_preserves_the_workload() {
        let spec = small_spec();
        let original = run_scale_concurrent(&spec);
        let capture = parse_capture(&render_capture(&spec)).unwrap();
        let remapped = replay_concurrent(&capture, &ReplayMix::Link(AccessLink::adsl())).unwrap();

        // The workload is identical...
        assert_eq!(remapped.commits, original.commits);
        assert_eq!(remapped.files, original.files);
        assert_eq!(remapped.logical_bytes, original.logical_bytes);
        assert_eq!(remapped.aggregate(), original.aggregate());
        // ...but every client now uploads through ADSL, so the mixed-link
        // timeline is gone.
        assert_ne!(remapped.intervals, original.intervals);
        let all_adsl = replay_concurrent(&capture, &ReplayMix::Link(AccessLink::adsl())).unwrap();
        assert_eq!(all_adsl.intervals, remapped.intervals, "replay must be deterministic");
    }

    #[test]
    fn profile_remap_charges_per_file_round_trips() {
        let spec = small_spec();
        let capture = parse_capture(&render_capture(&spec)).unwrap();
        let bundled = replay_concurrent(&capture, &ReplayMix::Original).unwrap();
        let per_file = ServiceProfile::all()
            .into_iter()
            .find(|p| !p.bundles())
            .expect("some profile must not bundle");
        let unbundled = replay_concurrent(&capture, &ReplayMix::Profile(per_file)).unwrap();

        assert_eq!(unbundled.aggregate(), bundled.aggregate());
        // Every commit pays files_per_commit RTTs instead of one, so no
        // transfer finishes earlier and the non-campus ones finish later.
        let longer = bundled
            .intervals
            .iter()
            .zip(&unbundled.intervals)
            .filter(|((_, e0), (_, e1))| e1 > e0)
            .count();
        assert!(longer > 0, "per-file round trips must slow some transfers");
        // A bundling profile replays exactly like the original mix.
        let still_bundled = ServiceProfile::all().into_iter().find(|p| p.bundles()).unwrap();
        let same = replay_concurrent(&capture, &ReplayMix::Profile(still_bundled)).unwrap();
        assert_eq!(same.intervals, bundled.intervals);
    }

    #[test]
    fn parser_rejects_malformed_captures() {
        let spec = ScaleSpec::new(2).with_seed(1);
        let good = render_capture(&spec);

        assert!(parse_capture("").is_err());
        let bad_format = good.replacen(CAPTURE_FORMAT, "pcap", 1);
        assert!(parse_capture(&bad_format).unwrap_err().contains("unknown capture format"));
        let bad_version = good.replacen("\"version\":1", "\"version\":99", 1);
        assert!(parse_capture(&bad_version).unwrap_err().contains("unsupported capture version"));
        let truncated: String = good.lines().take(2).map(|l| format!("{l}\n")).collect();
        assert!(parse_capture(&truncated).unwrap_err().contains("events"));
        let bad_bytes = good.replacen("\"bytes\":262144", "\"bytes\":1", 1);
        assert!(parse_capture(&bad_bytes).unwrap_err().contains("bytes"));
    }

    #[test]
    fn capture_of_spec_renders_exactly_like_render_capture() {
        let spec = small_spec();
        let capture = capture_of_spec(&spec);
        assert_eq!(capture.client_base, 0);
        assert_eq!(render_fleet_capture(&capture), render_capture(&spec));
        assert_eq!(parse_capture(&render_capture(&spec)).unwrap(), capture);
    }

    #[test]
    fn slices_roundtrip_through_text_and_merge_back() {
        let spec = small_spec();
        let capture = capture_of_spec(&spec);
        let ranges = [(0usize, 13usize), (13, 30), (30, 48)];
        let slices = slice_capture(&capture, &ranges).expect("valid split");
        assert_eq!(slices.len(), 3);
        for (slice, &(start, end)) in slices.iter().zip(&ranges) {
            assert_eq!(slice.client_base, start);
            assert_eq!(slice.clients, end - start);
            assert_eq!(slice.events.len(), (end - start) * capture.commits_per_client);
            // A slice is itself a valid capture: it survives the text
            // round trip, client_base included.
            let reparsed = parse_capture(&render_fleet_capture(slice)).expect("slice parses");
            assert_eq!(&reparsed, slice);
            // Slice events keep global client ids within the slice range.
            for ev in &slice.events {
                assert!(ev.client >= start && ev.client < end);
            }
        }
        // Merging in any order reconstructs the original capture exactly.
        let mut shuffled: Vec<FleetCapture> = slices.clone();
        shuffled.reverse();
        assert_eq!(merge_slices(&shuffled).expect("slices tile"), capture);
        assert_eq!(merge_slices(&slices).expect("slices tile"), capture);
    }

    #[test]
    fn slice_replay_matches_the_clients_share_of_the_unsliced_run() {
        let spec = small_spec();
        let capture = capture_of_spec(&spec);
        let whole = replay_concurrent(&capture, &ReplayMix::Original).unwrap();
        let slices = slice_capture(&capture, &[(0, 20), (20, 48)]).unwrap();
        let tail = replay_concurrent(&slices[1], &ReplayMix::Original).unwrap();
        assert_eq!(tail.clients, 28);
        // The slice commits under the same global user names, so its store
        // contents are exactly those clients' share of the whole run.
        for i in [20usize, 33, 47] {
            let user = scale_user(i);
            assert_eq!(tail.store.stats(&user), whole.store.stats(&user));
            assert_eq!(tail.store.list_files(&user), whole.store.list_files(&user));
        }
    }

    #[test]
    fn slice_and_merge_reject_bad_splits() {
        let capture = capture_of_spec(&ScaleSpec::new(6).with_seed(3));
        assert!(slice_capture(&capture, &[]).is_err());
        assert!(slice_capture(&capture, &[(0, 3)]).unwrap_err().contains("cover"));
        assert!(slice_capture(&capture, &[(0, 3), (4, 6)]).is_err(), "gapped ranges");
        assert!(slice_capture(&capture, &[(0, 3), (2, 6)]).is_err(), "overlapping ranges");
        assert!(slice_capture(&capture, &[(0, 0), (0, 6)]).is_err(), "empty range");

        let slices = slice_capture(&capture, &[(0, 2), (2, 4), (4, 6)]).unwrap();
        assert!(merge_slices(&[]).is_err());
        // A contiguous prefix merges fine — into a narrower capture.
        assert_eq!(merge_slices(&slices[..2]).unwrap().clients, 4);
        // Dropping the middle slice breaks the tiling.
        let gapped = vec![slices[0].clone(), slices[2].clone()];
        assert!(merge_slices(&gapped).unwrap_err().contains("tile"));
        // A header mismatch is rejected even when the ranges tile.
        let mut bad = slices.clone();
        bad[1].seed ^= 1;
        assert!(merge_slices(&bad).unwrap_err().contains("header"));
    }

    #[test]
    fn replay_rejects_unknown_link_presets() {
        let spec = ScaleSpec::new(2).with_seed(1);
        let text = render_capture(&spec).replacen("\"campus\"", "\"dialup\"", 1);
        let capture = parse_capture(&text).unwrap();
        let err = replay_concurrent(&capture, &ReplayMix::Original).unwrap_err();
        assert!(err.contains("dialup"));
    }
}
