//! Property tests for the fault-injection and recovery layer.
//!
//! The contract under test is the issue's round-trip property: an upload
//! interrupted mid-transfer by a seeded outage, resumed from the last
//! committed offset, then restored through a (likewise interrupted and
//! resumed) ranged download must round-trip byte-identically — SHA-256
//! validation of every reassembled file included — for arbitrary seeds and
//! arbitrary interrupt offsets. And the whole faulted pipeline must be a
//! pure function of its seeds: replaying it yields identical outcomes,
//! identical fault statistics, identical virtual timestamps.

use cloudsim_net::{FaultSchedule, OutageWindow};
use cloudsim_services::client::{FaultedRestoreOutcome, FaultedSyncOutcome};
use cloudsim_services::retry::{ExponentialBackoff, NoRetry};
use cloudsim_services::{AccessLink, ServiceProfile, SyncClient};
use cloudsim_storage::{ObjectStore, UploadPipeline};
use cloudsim_trace::{SimDuration, SimTime};
use cloudsim_workload::{BatchSpec, FileKind};
use proptest::prelude::*;

/// One full faulted pipeline: the owner uploads `files` over ADSL under
/// `up_faults`, then a fresh puller restores the namespace over ADSL under
/// `down_faults`. Both run the standard exponential backoff, so recovery is
/// expected to succeed whatever the outage placement.
fn round_trip(
    content_seed: u64,
    retry_seed: u64,
    files: usize,
    size: usize,
    up_faults: &FaultSchedule,
    down_faults: &FaultSchedule,
) -> (FaultedSyncOutcome, FaultedRestoreOutcome) {
    let store = ObjectStore::new();
    let batch = BatchSpec::new(files, size, FileKind::RandomBinary).generate(content_seed);
    let policy = ExponentialBackoff::standard();

    let mut sim = cloudsim_net::Simulator::new(7);
    let mut owner = SyncClient::for_user_on_link(
        ServiceProfile::dropbox(),
        UploadPipeline::sequential(),
        store.clone(),
        "owner",
        &AccessLink::adsl(),
    );
    let t0 = owner.login(&mut sim, SimTime::ZERO);
    let up = owner.sync_batch_faulted(
        &mut sim,
        &batch,
        t0 + SimDuration::from_secs(5),
        up_faults,
        &policy,
        retry_seed,
    );

    let mut psim = cloudsim_net::Simulator::new(8);
    let mut puller = SyncClient::for_user_on_link(
        ServiceProfile::dropbox(),
        UploadPipeline::sequential(),
        store.clone(),
        "puller",
        &AccessLink::adsl(),
    );
    let login = puller.login(&mut psim, SimTime::ZERO);
    let down = puller.restore_user_faulted(
        &mut psim,
        "owner",
        login + SimDuration::from_secs(1),
        down_faults,
        &policy,
        retry_seed ^ 0xD0_5E,
    );
    (up, down)
}

/// An outage window placed `offset_pct`% into the span of a fault-free
/// control run — the "arbitrary interrupt offset" raw material.
fn window_at(start: SimTime, end: SimTime, offset_pct: u8, secs: u64) -> FaultSchedule {
    let span = end.saturating_since(start);
    let down_at =
        start + SimDuration::from_secs_f64(span.as_secs_f64() * offset_pct as f64 / 100.0);
    FaultSchedule {
        windows: vec![OutageWindow { down_at, up_at: down_at + SimDuration::from_secs(secs) }],
    }
}

proptest! {
    // Each case simulates four full transfers over a slow link; a modest
    // case count still sweeps seeds and interrupt offsets broadly.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Upload → seeded mid-transfer interrupt → resume → restore
    /// round-trips byte-identically, checksums verified, for arbitrary
    /// seeds and interrupt offsets — and deterministically so.
    #[test]
    fn interrupted_round_trips_are_byte_identical_and_deterministic(
        content_seed in 0u64..1_000_000,
        retry_seed in 0u64..1_000_000,
        up_offset_pct in 5u8..95,
        down_offset_pct in 5u8..95,
        outage_secs in 1u64..5,
        files in 1usize..4,
    ) {
        let size = 300_000;
        // Fault-free control: learns where the transfer windows lie and
        // pins the recovery target (what "round-trips" must reproduce).
        let (up_control, down_control) = round_trip(
            content_seed, retry_seed, files, size, &FaultSchedule::NONE, &FaultSchedule::NONE,
        );
        prop_assert!(up_control.completed);
        prop_assert!(down_control.completed);
        prop_assert!(up_control.stats.is_clean());
        prop_assert_eq!(down_control.outcome.files_restored, files);
        prop_assert_eq!(down_control.stats.checksums_verified, files as u64);

        // Cut both directions at arbitrary offsets inside their windows.
        let up_faults = window_at(
            up_control.outcome.sync_started_at,
            up_control.outcome.completed_at,
            up_offset_pct,
            outage_secs,
        );
        let down_faults = window_at(
            down_control.outcome.requested_at,
            down_control.outcome.completed_at,
            down_offset_pct,
            outage_secs,
        );
        let (up, down) = round_trip(
            content_seed, retry_seed, files, size, &up_faults, &down_faults,
        );

        // Recovery must land everything the control landed.
        prop_assert!(up.completed, "upload must recover: {:?}", up.stats);
        prop_assert_eq!(up.committed_payload, up_control.committed_payload);
        prop_assert_eq!(up.abandoned_chunks, 0);
        prop_assert!(down.completed, "restore must recover: {:?}", down.stats);
        prop_assert_eq!(down.outcome.files_restored, files);
        prop_assert_eq!(down.outcome.files_failed, 0);
        prop_assert_eq!(down.outcome.logical_bytes, down_control.outcome.logical_bytes);

        // The byte-identity clincher: every reassembled file passed SHA-256
        // validation against its intact content, none failed.
        prop_assert_eq!(down.stats.checksums_verified, files as u64);
        prop_assert_eq!(down.stats.checksum_failures, 0);

        // Interruption accounting is consistent: wasted and salvaged bytes
        // only exist where interruptions happened, and recovery never beats
        // the fault-free clock.
        if up.stats.interruptions > 0 {
            prop_assert!(up.outcome.completed_at >= up_control.outcome.completed_at);
        } else {
            prop_assert_eq!(up.stats.wasted_bytes, 0);
            prop_assert_eq!(up.stats.salvaged_bytes, 0);
        }
        if down.stats.interruptions == 0 {
            prop_assert_eq!(down.stats.wasted_bytes, 0);
        }

        // Determinism: the same seeds and schedules replay bit-identically.
        let (up2, down2) = round_trip(
            content_seed, retry_seed, files, size, &up_faults, &down_faults,
        );
        prop_assert_eq!(up, up2);
        prop_assert_eq!(down, down2);
    }

    /// The no-retry control under the same cuts: whenever the outage
    /// actually interrupts the upload, no-retry commits strictly less than
    /// the backoff policy did — the recovery layer is what earns the bytes.
    #[test]
    fn no_retry_never_outperforms_backoff(
        content_seed in 0u64..1_000_000,
        up_offset_pct in 10u8..90,
    ) {
        let files = 2;
        let size = 300_000;
        let (up_control, _) = round_trip(
            content_seed, 1, files, size, &FaultSchedule::NONE, &FaultSchedule::NONE,
        );
        let up_faults = window_at(
            up_control.outcome.sync_started_at,
            up_control.outcome.completed_at,
            up_offset_pct,
            3,
        );

        let store = ObjectStore::new();
        let batch = BatchSpec::new(files, size, FileKind::RandomBinary).generate(content_seed);
        let mut sim = cloudsim_net::Simulator::new(7);
        let mut owner = SyncClient::for_user_on_link(
            ServiceProfile::dropbox(),
            UploadPipeline::sequential(),
            store.clone(),
            "owner",
            &AccessLink::adsl(),
        );
        let t0 = owner.login(&mut sim, SimTime::ZERO);
        let abandoned = owner.sync_batch_faulted(
            &mut sim,
            &batch,
            t0 + SimDuration::from_secs(5),
            &up_faults,
            &NoRetry,
            1,
        );
        let (recovered, _) = round_trip(
            content_seed, 1, files, size, &up_faults, &FaultSchedule::NONE,
        );
        if abandoned.stats.interruptions > 0 {
            prop_assert!(!abandoned.completed);
            prop_assert!(abandoned.committed_payload < recovered.committed_payload);
            prop_assert!(abandoned.abandoned_chunks > 0);
            // A cut exactly on a chunk boundary can interrupt without
            // losing in-flight bytes, so wasted_bytes may legitimately be
            // zero here; the abandoned tail is the guaranteed loss.
        } else {
            prop_assert_eq!(abandoned.committed_payload, recovered.committed_payload);
        }
    }
}
