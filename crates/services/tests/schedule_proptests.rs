//! Property tests for the temporal fleet scheduler.
//!
//! The scheduler's contract is that the schedule is *data*: a pure function
//! of `(FleetSpec, seed)`, identical across repeated calls and across
//! threads, with the legacy configuration (no think time, no jitter,
//! activation 1.0) degenerating to the old lock-step timeline. These
//! properties are what let the CI determinism legs `cmp` whole suite dumps
//! byte for byte.

use cloudsim_services::engine::EventHeap;
use cloudsim_services::fleet::{run_fleet, FleetSpec};
use cloudsim_services::schedule::{FleetSchedule, ThinkTime};
use cloudsim_services::ServiceProfile;
use cloudsim_storage::ObjectStore;
use cloudsim_trace::SimDuration;
use proptest::prelude::*;

/// A temporal spec drawn from integer raw material: `think_kind` selects the
/// distribution family, `activation_pct` the idle probability.
fn temporal_spec(
    seed: u64,
    clients: usize,
    rounds: usize,
    think_kind: u8,
    jitter_secs: u64,
    activation_pct: u8,
) -> FleetSpec {
    let think = match think_kind % 3 {
        0 => ThinkTime::NONE,
        1 => ThinkTime::Uniform {
            min: SimDuration::from_secs(1),
            max: SimDuration::from_secs(1 + jitter_secs),
        },
        _ => ThinkTime::Exponential { mean: SimDuration::from_secs(5) },
    };
    FleetSpec::new(ServiceProfile::dropbox(), clients)
        .with_files(2, 8 * 1024)
        .with_batches(rounds)
        .with_seed(seed)
        .with_think_time(think)
        .with_arrival_jitter(SimDuration::from_secs(jitter_secs))
        .with_activation(activation_pct as f64 / 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Schedule generation is a pure function of `(FleetSpec, seed)`: the
    /// same inputs give identical event lists across repeated calls and
    /// across concurrently generating threads.
    #[test]
    fn schedule_generation_is_pure(
        seed in 0u64..1_000_000,
        clients in 1usize..8,
        rounds in 1usize..6,
        think_kind in 0u8..3,
        jitter_secs in 0u64..60,
        activation_pct in 0u8..=100,
    ) {
        let spec = temporal_spec(seed, clients, rounds, think_kind, jitter_secs, activation_pct);
        let reference = spec.schedule();
        prop_assert_eq!(&reference, &spec.schedule());
        prop_assert_eq!(&reference, &FleetSchedule::generate(&spec));
        // Four threads generating concurrently see the same events: the
        // draws depend on nothing but the spec.
        let schedules: Vec<FleetSchedule> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4).map(|_| scope.spawn(|| spec.schedule())).collect();
            handles.into_iter().map(|h| h.join().expect("generator thread")).collect()
        });
        for schedule in &schedules {
            prop_assert_eq!(schedule, &reference);
        }
        // Structural sanity: every connected round appears exactly once.
        for (i, client) in reference.clients.iter().enumerate() {
            let connected = spec.slots[i].active_rounds(spec.rounds);
            prop_assert_eq!(client.events.len(), connected);
            prop_assert_eq!(client.sync_rounds() + client.idle_rounds(), connected);
        }
    }

    /// The legacy configuration (zero think time, zero jitter, full
    /// activation) schedules pure lock-step: every connected round syncs,
    /// ordinals equal round offsets, and the per-slot sync count equals the
    /// membership window — what PR 4's fleets implicitly did, which is why
    /// the committed `fleet.*`/`hetero.*`/`restore.*` baselines replay
    /// byte-identically through the new scheduler (the bench crate asserts
    /// that equality against the committed file).
    #[test]
    fn legacy_config_schedules_lockstep(
        seed in 0u64..1_000_000,
        clients in 2usize..8,
        rounds in 2usize..6,
    ) {
        let spec = FleetSpec::new(ServiceProfile::dropbox(), clients)
            .with_files(2, 8 * 1024)
            .with_batches(rounds)
            .with_seed(seed)
            .with_churn(1, 1);
        prop_assert!(spec.is_lockstep());
        let schedule = spec.schedule();
        prop_assert!(schedule.is_lockstep());
        prop_assert_eq!(schedule.total_idle_rounds(), 0);
        for (i, client) in schedule.clients.iter().enumerate() {
            prop_assert_eq!(client.sync_rounds(), spec.slots[i].active_rounds(spec.rounds));
            prop_assert_eq!(client.sync_rounds(), spec.sync_rounds_of(i));
            for (k, event) in client.events.iter().enumerate() {
                let activation = event.activation().expect("lock-step rounds all sync");
                prop_assert_eq!(activation.ordinal, k);
                prop_assert!(activation.arrival_jitter.is_zero());
                prop_assert!(activation.think.is_zero());
            }
        }
    }
}

proptest! {
    // Fleet runs are comparatively expensive; a handful of cases over tiny
    // fleets still covers the interleavings that matter.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// With jitter, think time and idle rounds all enabled, a concurrent run
    /// still replays the sequential baseline bit for bit: the schedule is
    /// data, not thread timing.
    #[test]
    fn temporal_fleets_replay_bit_identically_across_thread_counts(
        seed in 0u64..100_000,
        think_kind in 1u8..3,
        activation_pct in 40u8..=100,
    ) {
        let spec = temporal_spec(seed, 4, 3, think_kind, 15, activation_pct);
        let sequential = run_fleet(&spec, ObjectStore::new(), 1);
        let concurrent = run_fleet(&spec, ObjectStore::new(), 4);
        prop_assert_eq!(&sequential.clients, &concurrent.clients);
        prop_assert_eq!(sequential.aggregate(), concurrent.aggregate());
        prop_assert_eq!(
            sequential.total_synced_rounds() + sequential.total_idle_rounds(),
            (0..4).map(|i| spec.slots[i].active_rounds(spec.rounds)).sum::<usize>()
        );
    }

    /// The event heap lowered from an arbitrary schedule is pure data —
    /// deriving twice pops the same total order — and the heap-driven fleet
    /// replay is bit-identical across repeated runs and across 1-vs-N
    /// workers. This is the engine-level restatement of the determinism
    /// contract: the heap owns the order, the workers only own the labour.
    #[test]
    fn heap_driven_replay_is_bit_identical_across_runs_and_workers(
        seed in 0u64..100_000,
        think_kind in 0u8..3,
        jitter_secs in 0u64..30,
        activation_pct in 40u8..=100,
    ) {
        let spec = temporal_spec(seed, 4, 3, think_kind, jitter_secs, activation_pct);
        let schedule = spec.schedule();
        let drain = |mut heap: EventHeap| {
            let mut events = Vec::new();
            while let Some(ev) = heap.pop() {
                events.push(ev);
            }
            events
        };
        let order = drain(EventHeap::derive(&spec, &schedule));
        prop_assert!(!order.is_empty());
        prop_assert_eq!(&order, &drain(EventHeap::derive(&spec, &schedule)));
        // The popped sequence is totally ordered by the heap key.
        for pair in order.windows(2) {
            prop_assert!(pair[0] < pair[1], "heap popped {:?} before {:?}", pair[0], pair[1]);
        }
        let once = run_fleet(&spec, ObjectStore::new(), 1);
        let again = run_fleet(&spec, ObjectStore::new(), 1);
        let wide = run_fleet(&spec, ObjectStore::new(), 8);
        prop_assert_eq!(&once.clients, &again.clients);
        prop_assert_eq!(&once.clients, &wide.clients);
        prop_assert_eq!(once.aggregate(), again.aggregate());
        prop_assert_eq!(once.aggregate(), wide.aggregate());
    }
}
