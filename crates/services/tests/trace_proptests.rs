//! Property tests for the sharded trace recorder.
//!
//! The recorder's contract is the determinism invariant the trace-capture
//! redesign rests on: merging per-worker shards by the
//! `(timestamp, flow, seq)` total order reconstructs the exact packet
//! sequence a sequential single-shard capture produces, for arbitrary
//! packet interleavings, arbitrary flow-to-shard routings and any worker
//! count — which is what lets the traced fleet-scale runner dump
//! bit-identical captures whatever the host's parallelism was.

use cloudsim_services::scale::{run_scale, run_scale_traced, ScaleSpec};
use cloudsim_storage::{GcPolicy, ObjectStore};
use cloudsim_trace::packet::{
    Direction, Endpoint, PacketRecord, TcpFlags, TransportProtocol, TCP_HEADER_BYTES,
};
use cloudsim_trace::{FlowId, FlowKind, SimTime, TraceRecorder, TraceShard};
use proptest::prelude::*;

fn packet(flow: FlowId, t_us: u64, payload: u32) -> PacketRecord {
    PacketRecord {
        timestamp: SimTime::from_micros(t_us),
        src: Endpoint::from_octets(10, 0, 0, 2, 50_000),
        dst: Endpoint::from_octets(10, 0, 0, 1, 443),
        protocol: TransportProtocol::Tcp,
        flags: if payload == 0 { TcpFlags::SYN } else { TcpFlags::ACK },
        payload_len: payload,
        header_len: TCP_HEADER_BYTES,
        direction: Direction::Upload,
        flow,
        kind: FlowKind::Storage,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For an arbitrary interleaved packet stream (each flow's packets kept
    /// in stream order, flows routed whole to arbitrary shards), the k-shard
    /// merge is bit-identical to recording the same stream on one shard.
    #[test]
    fn sharded_merge_equals_single_shard_capture(
        shard_count in 1usize..8,
        // Per-flow timestamp draws; payloads derive from (flow, seq) so
        // every packet is distinguishable.
        flows in proptest::collection::vec(
            proptest::collection::vec(0u64..200, 1..6),
            1..16,
        ),
        routing in proptest::collection::vec(0usize..8, 1..17),
        interleave in proptest::collection::vec(0usize..16, 0..48),
    ) {
        // Expand the draws into per-flow packet sequences. Timestamps are
        // raw draws over a narrow range — ties within and across flows are
        // likely, which is exactly what exercises the
        // (timestamp, flow, seq) merge key.
        let per_flow: Vec<Vec<PacketRecord>> = flows
            .iter()
            .enumerate()
            .map(|(i, draws)| {
                draws
                    .iter()
                    .enumerate()
                    .map(|(s, &t)| packet(FlowId(i as u64), t, (i * 100 + s) as u32))
                    .collect()
            })
            .collect();

        // One global interleaving: `interleave` picks which flow emits its
        // next pending packet; leftovers drain in flow order.
        let mut cursors = vec![0usize; per_flow.len()];
        let mut stream: Vec<(usize, PacketRecord)> = Vec::new();
        for &pick in &interleave {
            let i = pick % per_flow.len();
            if cursors[i] < per_flow[i].len() {
                stream.push((i, per_flow[i][cursors[i]].clone()));
                cursors[i] += 1;
            }
        }
        for (i, pkts) in per_flow.iter().enumerate() {
            while cursors[i] < pkts.len() {
                stream.push((i, pkts[cursors[i]].clone()));
                cursors[i] += 1;
            }
        }

        // Reference: the whole stream on a single shard.
        let mut single = TraceShard::new();
        for (_, p) in &stream {
            single.record(p.clone());
        }
        let reference = TraceRecorder::from_shards(vec![single]).finish().into_packets();

        // Sharded: the same stream routed flow-whole to arbitrary shards.
        let mut recorder = TraceRecorder::with_shards(shard_count);
        for (i, p) in &stream {
            let shard = routing[*i % routing.len()] % shard_count;
            recorder.shards_mut()[shard].record(p.clone());
        }
        prop_assert_eq!(recorder.finish().into_packets(), reference);
    }

    /// The traced fleet-scale runner end to end: for 1..8 workers the merged
    /// capture is bit-identical to the single-worker capture, and the run
    /// data matches the traceless runner exactly.
    #[test]
    fn traced_scale_capture_is_worker_count_invariant(
        seed in 0u64..1_000_000,
        clients in 1usize..24,
        commits in 1usize..3,
        workers in 2usize..8,
    ) {
        let spec = ScaleSpec::new(clients).with_seed(seed).with_commits(commits);
        let (run_one, trace_one) =
            run_scale_traced(&spec, ObjectStore::with_policy(GcPolicy::MarkSweep), 1);
        let (run_k, trace_k) =
            run_scale_traced(&spec, ObjectStore::with_policy(GcPolicy::MarkSweep), workers);
        prop_assert_eq!(trace_k.view().packets(), trace_one.view().packets());
        prop_assert_eq!(&run_k.intervals, &run_one.intervals);

        let plain = run_scale(&spec, ObjectStore::with_policy(GcPolicy::MarkSweep), workers);
        prop_assert_eq!(run_k.commits, plain.commits);
        prop_assert_eq!(run_k.logical_bytes, plain.logical_bytes);
        prop_assert_eq!(&run_k.intervals, &plain.intervals);
        prop_assert_eq!(run_k.aggregate(), plain.aggregate());
    }
}
