//! Property tests for capture slicing and partition merging.
//!
//! The partition runner's contract is structural: any valid contiguous
//! split of a capture slices into per-worker captures that concatenate
//! back to the original, and merging finished partitions is
//! order-independent — the k-way merge by event key reconstructs the
//! global heap pop order whatever order the workers finished in. These
//! two properties are what let the CI partition-determinism leg `cmp`
//! whole suite dumps byte for byte across worker counts.

use cloudsim_services::capture::{
    capture_of_spec, merge_slices, parse_capture, render_fleet_capture, slice_capture,
};
use cloudsim_services::partition::{
    merge_partitions, partition_ranges, run_partition, spec_partitions, PartitionRun,
};
use cloudsim_services::scale::{run_scale, ScaleSpec};
use cloudsim_storage::{GcPolicy, ObjectStore};
use proptest::prelude::*;

/// Turns `cuts` (arbitrary raw draws) into a valid contiguous split of
/// `clients`: cut points are dedup-sorted modulo the population.
fn ranges_from_cuts(clients: usize, cuts: &[usize]) -> Vec<(usize, usize)> {
    let mut points: Vec<usize> = cuts.iter().map(|c| c % clients).filter(|&c| c > 0).collect();
    points.sort_unstable();
    points.dedup();
    points.push(clients);
    let mut ranges = Vec::with_capacity(points.len());
    let mut start = 0usize;
    for end in points {
        ranges.push((start, end));
        start = end;
    }
    ranges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Slicing over an arbitrary valid contiguous split round-trips: the
    /// slices tile the population, each survives the text round trip, and
    /// merging them back (in any order) reproduces the original capture
    /// exactly.
    #[test]
    fn slice_capture_roundtrips_over_arbitrary_splits(
        seed in 0u64..1_000_000,
        clients in 1usize..40,
        commits in 1usize..4,
        cuts in proptest::collection::vec(0usize..64, 0..6),
        rotate in 0usize..8,
    ) {
        let spec = ScaleSpec::new(clients).with_seed(seed).with_commits(commits);
        let capture = capture_of_spec(&spec);
        let ranges = ranges_from_cuts(clients, &cuts);
        let mut slices = slice_capture(&capture, &ranges).expect("valid split must slice");

        prop_assert_eq!(slices.len(), ranges.len());
        let mut total_events = 0usize;
        for slice in &slices {
            total_events += slice.events.len();
            prop_assert_eq!(slice.events.len(), slice.clients * commits);
            let reparsed = parse_capture(&render_fleet_capture(slice)).expect("slice parses");
            prop_assert_eq!(&reparsed, slice);
        }
        prop_assert_eq!(total_events, capture.events.len());

        // Merge in an arbitrary rotation of the slice order.
        slices.rotate_left(rotate % ranges.len());
        prop_assert_eq!(merge_slices(&slices).expect("slices tile"), capture);
    }

    /// Partition merges are order-independent: any permutation of the
    /// finished partitions merges to the identical run, and that run
    /// matches the unsliced one bit for bit.
    #[test]
    fn partition_merge_is_order_independent(
        seed in 0u64..1_000_000,
        clients in 1usize..24,
        partitions in 1usize..6,
        rotate in 0usize..8,
        flip in 0u8..2,
    ) {
        let partitions = partitions.min(clients);
        let spec = ScaleSpec::new(clients).with_seed(seed);
        let whole = run_scale(&spec, ObjectStore::with_policy(GcPolicy::MarkSweep), 4);

        let store = ObjectStore::with_policy(GcPolicy::MarkSweep);
        let started = std::time::Instant::now();
        let mut finished: Vec<PartitionRun> = spec_partitions(&spec, partitions)
            .iter()
            .map(|p| run_partition(p, &store, 2).expect("partition runs"))
            .collect();
        finished.rotate_left(rotate % partitions);
        if flip == 1 {
            finished.reverse();
        }
        let files = (clients * spec.commits_per_client * spec.files_per_commit) as u64;
        let (merged, _waves) =
            merge_partitions(0, clients, files, &finished, store, started).expect("tiles");

        prop_assert_eq!(&merged.intervals, &whole.intervals);
        prop_assert_eq!(merged.commits, whole.commits);
        prop_assert_eq!(merged.logical_bytes, whole.logical_bytes);
        prop_assert_eq!(merged.aggregate(), whole.aggregate());
        prop_assert_eq!(merged.load_curve(12), whole.load_curve(12));
    }

    /// The near-equal range splitter always tiles the population with
    /// non-empty ranges whose sizes differ by at most one.
    #[test]
    fn partition_ranges_always_tile(clients in 1usize..500, partitions in 1usize..16) {
        let partitions = partitions.min(clients);
        let ranges = partition_ranges(clients, partitions);
        prop_assert_eq!(ranges.len(), partitions);
        prop_assert_eq!(ranges[0].0, 0);
        prop_assert_eq!(ranges[ranges.len() - 1].1, clients);
        let sizes: Vec<usize> = ranges.iter().map(|&(s, e)| e - s).collect();
        for pair in ranges.windows(2) {
            prop_assert_eq!(pair[0].1, pair[1].0);
        }
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(*min >= 1 && max - min <= 1);
    }
}
