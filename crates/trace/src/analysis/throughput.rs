//! Upload throughput over time and pause detection.
//!
//! §4.1: "By monitoring throughput during the upload of files differing in
//! size, we determine whether files are exchanged as single objects (no pause
//! during the upload), or split into chunks, each delimited by a pause."
//!
//! [`throughput_series`] bins upload payload into fixed intervals;
//! [`detect_pauses`] finds the silent gaps between payload packets that
//! delimit chunk submissions.

use crate::packet::{Direction, PacketRecord};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration for throughput binning and pause detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThroughputConfig {
    /// Width of a throughput bin.
    pub bin: SimDuration,
    /// Minimum silence between upload payload packets to call it a pause.
    pub min_pause: SimDuration,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            bin: SimDuration::from_millis(100),
            // A chunk boundary involves at least a request/response exchange
            // with the control plane (~1 RTT + server think time); 150 ms
            // separates that from in-chunk congestion-control pacing.
            min_pause: SimDuration::from_millis(150),
        }
    }
}

/// One detected pause in the upload stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pause {
    /// Timestamp of the last payload packet before the pause.
    pub start: SimTime,
    /// Timestamp of the first payload packet after the pause.
    pub end: SimTime,
    /// Upload payload bytes observed before this pause since the previous
    /// pause (i.e. the size of the chunk the pause terminates).
    pub bytes_before: u64,
}

impl Pause {
    /// Length of the silent gap.
    pub fn gap(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Bins upload payload bytes into fixed intervals and returns
/// `(bin start time, bytes per second within the bin)` samples.
pub fn throughput_series(
    packets: &[PacketRecord],
    config: ThroughputConfig,
) -> Vec<(SimTime, f64)> {
    assert!(!config.bin.is_zero(), "throughput bin must be positive");
    let uploads: Vec<&PacketRecord> =
        packets.iter().filter(|p| p.direction == Direction::Upload && p.has_payload()).collect();
    let Some(last) = uploads.iter().map(|p| p.timestamp).max() else {
        return Vec::new();
    };
    let bin_us = config.bin.as_micros();
    let nbins = (last.as_micros() / bin_us + 1) as usize;
    let mut bins = vec![0u64; nbins];
    for p in &uploads {
        let idx = (p.timestamp.as_micros() / bin_us) as usize;
        bins[idx] += p.payload_len as u64;
    }
    let bin_secs = config.bin.as_secs_f64();
    bins.iter()
        .enumerate()
        .map(|(i, bytes)| (SimTime::from_micros(i as u64 * bin_us), *bytes as f64 / bin_secs))
        .collect()
}

/// Detects pauses (silent gaps longer than `config.min_pause`) between upload
/// payload packets. The trace must be sorted by timestamp.
pub fn detect_pauses(packets: &[PacketRecord], config: ThroughputConfig) -> Vec<Pause> {
    let mut pauses = Vec::new();
    let mut prev: Option<SimTime> = None;
    let mut bytes_since_pause: u64 = 0;
    for p in packets.iter().filter(|p| p.direction == Direction::Upload && p.has_payload()) {
        if let Some(prev_ts) = prev {
            let gap = p.timestamp - prev_ts;
            if gap >= config.min_pause {
                pauses.push(Pause {
                    start: prev_ts,
                    end: p.timestamp,
                    bytes_before: bytes_since_pause,
                });
                bytes_since_pause = 0;
            }
        }
        bytes_since_pause += p.payload_len as u64;
        prev = Some(p.timestamp);
    }
    pauses
}

/// Infers a chunk size from detected pauses: the median of the byte counts
/// observed between consecutive pauses, or `None` when fewer than `min_pauses`
/// pauses were seen (the transfer was a single object).
pub fn infer_chunk_size(pauses: &[Pause], min_pauses: usize) -> Option<u64> {
    if pauses.len() < min_pauses {
        return None;
    }
    let mut sizes: Vec<u64> = pauses.iter().map(|p| p.bytes_before).filter(|b| *b > 0).collect();
    if sizes.is_empty() {
        return None;
    }
    sizes.sort_unstable();
    Some(sizes[sizes.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowId, FlowKind};
    use crate::packet::{Endpoint, TcpFlags, TransportProtocol, MSS, TCP_HEADER_BYTES};

    fn upload(t_us: u64, payload: u32) -> PacketRecord {
        PacketRecord {
            timestamp: SimTime::from_micros(t_us),
            src: Endpoint::from_octets(192, 168, 1, 10, 50000),
            dst: Endpoint::from_octets(10, 0, 0, 1, 443),
            protocol: TransportProtocol::Tcp,
            flags: TcpFlags::ACK,
            payload_len: payload,
            header_len: TCP_HEADER_BYTES,
            direction: Direction::Upload,
            flow: FlowId(0),
            kind: FlowKind::Storage,
        }
    }

    /// A chunked upload: `chunks` chunks of `segs` MSS segments, separated by
    /// `pause_ms` of silence (the client waiting for the chunk commit).
    fn chunked_trace(chunks: usize, segs: usize, pause_ms: u64) -> Vec<PacketRecord> {
        let mut trace = Vec::new();
        let mut t = 0u64;
        for _ in 0..chunks {
            for _ in 0..segs {
                trace.push(upload(t, MSS));
                t += 100; // 100 us per segment
            }
            t += pause_ms * 1000;
        }
        trace
    }

    #[test]
    fn pauses_delimit_chunks() {
        let trace = chunked_trace(4, 50, 300);
        let pauses = detect_pauses(&trace, ThroughputConfig::default());
        assert_eq!(pauses.len(), 3, "N chunks produce N-1 pauses");
        for p in &pauses {
            assert_eq!(p.bytes_before, 50 * MSS as u64);
            assert!(p.gap() >= SimDuration::from_millis(300));
        }
    }

    #[test]
    fn continuous_upload_has_no_pauses() {
        let trace = chunked_trace(1, 200, 0);
        let pauses = detect_pauses(&trace, ThroughputConfig::default());
        assert!(pauses.is_empty());
        assert_eq!(infer_chunk_size(&pauses, 1), None);
    }

    #[test]
    fn chunk_size_inference_returns_the_median_chunk() {
        let trace = chunked_trace(5, 40, 400);
        let pauses = detect_pauses(&trace, ThroughputConfig::default());
        let size = infer_chunk_size(&pauses, 1).unwrap();
        assert_eq!(size, 40 * MSS as u64);
    }

    #[test]
    fn throughput_series_reflects_transfer_rate() {
        // 100 segments of MSS bytes sent 1 ms apart => ~1.46 MB/s for 100 ms.
        let trace: Vec<_> = (0..100).map(|i| upload(i * 1000, MSS)).collect();
        let series = throughput_series(&trace, ThroughputConfig::default());
        assert_eq!(series.len(), 1);
        let (_, rate) = series[0];
        assert!((rate - 100.0 * MSS as f64 / 0.1).abs() < 1.0);
    }

    #[test]
    fn throughput_series_has_idle_bins_during_pauses() {
        let trace = chunked_trace(2, 10, 500);
        let series = throughput_series(&trace, ThroughputConfig::default());
        // With a 500 ms pause there must be at least 4 empty 100 ms bins.
        let empty = series.iter().filter(|(_, r)| *r == 0.0).count();
        assert!(empty >= 4, "expected idle bins, got {empty}");
    }

    #[test]
    fn empty_trace_edge_cases() {
        assert!(throughput_series(&[], ThroughputConfig::default()).is_empty());
        assert!(detect_pauses(&[], ThroughputConfig::default()).is_empty());
        assert_eq!(infer_chunk_size(&[], 0), None);
    }

    #[test]
    #[should_panic(expected = "throughput bin must be positive")]
    fn zero_bin_rejected() {
        let cfg = ThroughputConfig { bin: SimDuration::ZERO, ..Default::default() };
        let _ = throughput_series(&[upload(0, 10)], cfg);
    }
}
