//! Trace analyzers used by the benchmark suite.
//!
//! Each sub-module corresponds to one of the trace post-processing steps the
//! paper applies to its packet captures:
//!
//! * [`syn`] — cumulative TCP SYN counting over time (Fig. 3, §4.2),
//! * [`bursts`] — packet-burst detection used to reveal sequential per-file
//!   submission with application-layer acknowledgements (§4.2),
//! * [`throughput`] — upload throughput over time and pause detection, used to
//!   reveal chunk boundaries (§4.1),
//! * [`volume`] — byte accounting: uploaded payload, total traffic, protocol
//!   overhead (Fig. 5, Fig. 6c, §5.3),
//! * [`timeline`] — synchronization start-up and completion time extraction
//!   (Fig. 6a, Fig. 6b, §5.1–§5.2).

pub mod bursts;
pub mod syn;
pub mod throughput;
pub mod timeline;
pub mod volume;

pub use bursts::{detect_bursts, Burst, BurstConfig};
pub use syn::{cumulative_syns, syn_count, syn_count_by_kind};
pub use throughput::{detect_pauses, throughput_series, Pause, ThroughputConfig};
pub use timeline::{completion_time, startup_delay, SyncTimeline};
pub use volume::{overhead_ratio, uploaded_payload, TrafficVolume};
