//! Synchronization start-up and completion time extraction.
//!
//! §5.1: start-up delay is "computed from the moment files start being
//! modified until the first storage flow is observed".
//! §5.2: completion time is "the difference between the first and the last
//! packet with payload seen in any storage flow", ignoring TCP tear-down and
//! trailing control messages.

use crate::flow::FlowKind;
use crate::packet::PacketRecord;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The synchronization timeline extracted from one experiment trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncTimeline {
    /// The moment the testing application started modifying files.
    pub modification_start: SimTime,
    /// First packet of any storage flow (SYN counts: "first storage flow observed").
    pub first_storage_packet: Option<SimTime>,
    /// First storage packet that carries payload.
    pub first_storage_payload: Option<SimTime>,
    /// Last storage packet that carries payload.
    pub last_storage_payload: Option<SimTime>,
}

impl SyncTimeline {
    /// Extracts the timeline from a trace.
    pub fn from_packets(packets: &[PacketRecord], modification_start: SimTime) -> SyncTimeline {
        let storage = packets.iter().filter(|p| p.kind == FlowKind::Storage);
        let mut first_packet = None;
        let mut first_payload = None;
        let mut last_payload = None;
        for p in storage {
            first_packet = Some(match first_packet {
                None => p.timestamp,
                Some(t) => p.timestamp.min(t),
            });
            if p.has_payload() {
                first_payload = Some(match first_payload {
                    None => p.timestamp,
                    Some(t) => p.timestamp.min(t),
                });
                last_payload = Some(match last_payload {
                    None => p.timestamp,
                    Some(t) => p.timestamp.max(t),
                });
            }
        }
        SyncTimeline {
            modification_start,
            first_storage_packet: first_packet,
            first_storage_payload: first_payload,
            last_storage_payload: last_payload,
        }
    }

    /// Synchronization start-up delay (Fig. 6a), if a storage flow was observed.
    pub fn startup_delay(&self) -> Option<SimDuration> {
        self.first_storage_packet.map(|t| t.saturating_since(self.modification_start))
    }

    /// Upload completion time (Fig. 6b), if any storage payload was observed.
    pub fn completion_time(&self) -> Option<SimDuration> {
        match (self.first_storage_payload, self.last_storage_payload) {
            (Some(first), Some(last)) => Some(last.saturating_since(first)),
            _ => None,
        }
    }
}

/// Convenience wrapper: start-up delay straight from a trace.
pub fn startup_delay(packets: &[PacketRecord], modification_start: SimTime) -> Option<SimDuration> {
    SyncTimeline::from_packets(packets, modification_start).startup_delay()
}

/// Convenience wrapper: completion time straight from a trace.
pub fn completion_time(packets: &[PacketRecord]) -> Option<SimDuration> {
    SyncTimeline::from_packets(packets, SimTime::ZERO).completion_time()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowId;
    use crate::packet::{Direction, Endpoint, TcpFlags, TransportProtocol, TCP_HEADER_BYTES};

    fn packet(kind: FlowKind, t_ms: u64, payload: u32, flags: TcpFlags) -> PacketRecord {
        PacketRecord {
            timestamp: SimTime::from_millis(t_ms),
            src: Endpoint::from_octets(192, 168, 1, 10, 50000),
            dst: Endpoint::from_octets(10, 0, 0, 1, 443),
            protocol: TransportProtocol::Tcp,
            flags,
            payload_len: payload,
            header_len: TCP_HEADER_BYTES,
            direction: Direction::Upload,
            flow: FlowId(0),
            kind,
        }
    }

    #[test]
    fn startup_is_measured_to_the_first_storage_packet() {
        let packets = vec![
            packet(FlowKind::Control, 100, 500, TcpFlags::ACK),
            packet(FlowKind::Storage, 2_000, 0, TcpFlags::SYN),
            packet(FlowKind::Storage, 2_200, 1460, TcpFlags::ACK),
            packet(FlowKind::Storage, 9_000, 1460, TcpFlags::ACK),
        ];
        let timeline = SyncTimeline::from_packets(&packets, SimTime::from_millis(500));
        assert_eq!(timeline.startup_delay(), Some(SimDuration::from_millis(1_500)));
        assert_eq!(timeline.completion_time(), Some(SimDuration::from_millis(6_800)));
        assert_eq!(timeline.first_storage_payload, Some(SimTime::from_millis(2_200)));
        assert_eq!(timeline.last_storage_payload, Some(SimTime::from_millis(9_000)));
    }

    #[test]
    fn control_only_trace_has_no_startup_or_completion() {
        let packets = vec![
            packet(FlowKind::Control, 100, 500, TcpFlags::ACK),
            packet(FlowKind::Notification, 200, 100, TcpFlags::ACK),
        ];
        let timeline = SyncTimeline::from_packets(&packets, SimTime::ZERO);
        assert_eq!(timeline.startup_delay(), None);
        assert_eq!(timeline.completion_time(), None);
    }

    #[test]
    fn startup_saturates_when_storage_precedes_modification() {
        // Degenerate but possible if a pending commit flushes right before the
        // workload starts; the metric saturates at zero rather than underflowing.
        let packets = vec![packet(FlowKind::Storage, 100, 0, TcpFlags::SYN)];
        let delay = startup_delay(&packets, SimTime::from_secs(5)).unwrap();
        assert_eq!(delay, SimDuration::ZERO);
    }

    #[test]
    fn completion_with_single_payload_packet_is_zero() {
        let packets = vec![packet(FlowKind::Storage, 100, 1000, TcpFlags::ACK)];
        assert_eq!(completion_time(&packets), Some(SimDuration::ZERO));
    }

    #[test]
    fn convenience_wrappers_match_struct_api() {
        let packets = vec![
            packet(FlowKind::Storage, 1_000, 0, TcpFlags::SYN),
            packet(FlowKind::Storage, 1_100, 1460, TcpFlags::ACK),
            packet(FlowKind::Storage, 4_100, 1460, TcpFlags::ACK),
        ];
        assert_eq!(startup_delay(&packets, SimTime::ZERO), Some(SimDuration::from_secs(1)));
        assert_eq!(completion_time(&packets), Some(SimDuration::from_secs(3)));
    }
}
