//! Byte accounting: uploaded payload, total traffic, protocol overhead.
//!
//! §5.3 defines protocol overhead as "the total storage and control traffic
//! over the benchmarking size", and Figures 4 and 5 plot the volume of
//! uploaded data against the benchmark file size for the delta-encoding and
//! compression tests.

use crate::flow::FlowKind;
use crate::packet::{Direction, PacketRecord};
use serde::{Deserialize, Serialize};

/// Traffic volume broken down the way the paper reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficVolume {
    /// Application payload uploaded over storage flows (the quantity plotted in
    /// Fig. 4 and Fig. 5).
    pub storage_payload_up: u64,
    /// Application payload downloaded over storage flows.
    pub storage_payload_down: u64,
    /// Total wire bytes (headers included) over storage flows, both directions.
    pub storage_wire: u64,
    /// Total wire bytes over control flows, both directions.
    pub control_wire: u64,
    /// Total wire bytes over notification flows, both directions.
    pub notification_wire: u64,
    /// Total wire bytes over DNS flows, both directions.
    pub dns_wire: u64,
}

impl TrafficVolume {
    /// Computes the volume breakdown of a trace.
    pub fn from_packets(packets: &[PacketRecord]) -> TrafficVolume {
        let mut v = TrafficVolume::default();
        for p in packets {
            match p.kind {
                FlowKind::Storage => {
                    v.storage_wire += p.wire_len();
                    match p.direction {
                        Direction::Upload => v.storage_payload_up += p.payload_len as u64,
                        Direction::Download => v.storage_payload_down += p.payload_len as u64,
                    }
                }
                FlowKind::Control => v.control_wire += p.wire_len(),
                FlowKind::Notification => v.notification_wire += p.wire_len(),
                FlowKind::Dns => v.dns_wire += p.wire_len(),
            }
        }
        v
    }

    /// Total storage + control traffic (the numerator of the overhead metric).
    pub fn benchmark_traffic(&self) -> u64 {
        self.storage_wire + self.control_wire
    }

    /// Total traffic of any kind.
    pub fn total(&self) -> u64 {
        self.storage_wire + self.control_wire + self.notification_wire + self.dns_wire
    }
}

/// Application payload uploaded over storage flows (Fig. 4 / Fig. 5 y-axis).
pub fn uploaded_payload(packets: &[PacketRecord]) -> u64 {
    packets
        .iter()
        .filter(|p| p.kind == FlowKind::Storage && p.direction == Direction::Upload)
        .map(|p| p.payload_len as u64)
        .sum()
}

/// Protocol overhead as defined in §5.3: total storage and control traffic
/// divided by the benchmark payload size. A value of 1.0 means the service
/// moved exactly as many bytes as the benchmark contained; the paper reports
/// values from ~1.05 up to more than 5 for Cloud Drive.
pub fn overhead_ratio(packets: &[PacketRecord], benchmark_bytes: u64) -> f64 {
    assert!(benchmark_bytes > 0, "benchmark size must be positive");
    let volume = TrafficVolume::from_packets(packets);
    volume.benchmark_traffic() as f64 / benchmark_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowId;
    use crate::packet::{Endpoint, TcpFlags, TransportProtocol, TCP_HEADER_BYTES};
    use crate::time::SimTime;

    fn packet(kind: FlowKind, dir: Direction, payload: u32) -> PacketRecord {
        PacketRecord {
            timestamp: SimTime::ZERO,
            src: Endpoint::from_octets(192, 168, 1, 10, 50000),
            dst: Endpoint::from_octets(10, 0, 0, 1, 443),
            protocol: TransportProtocol::Tcp,
            flags: TcpFlags::ACK,
            payload_len: payload,
            header_len: TCP_HEADER_BYTES,
            direction: dir,
            flow: FlowId(0),
            kind,
        }
    }

    #[test]
    fn volume_breakdown_by_kind_and_direction() {
        let packets = vec![
            packet(FlowKind::Storage, Direction::Upload, 1000),
            packet(FlowKind::Storage, Direction::Download, 200),
            packet(FlowKind::Control, Direction::Upload, 300),
            packet(FlowKind::Notification, Direction::Download, 50),
            packet(FlowKind::Dns, Direction::Upload, 60),
        ];
        let v = TrafficVolume::from_packets(&packets);
        assert_eq!(v.storage_payload_up, 1000);
        assert_eq!(v.storage_payload_down, 200);
        assert_eq!(v.storage_wire, 1200 + 2 * TCP_HEADER_BYTES as u64);
        assert_eq!(v.control_wire, 300 + TCP_HEADER_BYTES as u64);
        assert_eq!(v.notification_wire, 50 + TCP_HEADER_BYTES as u64);
        assert_eq!(v.dns_wire, 60 + TCP_HEADER_BYTES as u64);
        assert_eq!(v.benchmark_traffic(), v.storage_wire + v.control_wire);
        assert_eq!(v.total(), v.benchmark_traffic() + v.notification_wire + v.dns_wire);
    }

    #[test]
    fn uploaded_payload_counts_only_storage_uploads() {
        let packets = vec![
            packet(FlowKind::Storage, Direction::Upload, 1000),
            packet(FlowKind::Storage, Direction::Upload, 500),
            packet(FlowKind::Storage, Direction::Download, 999),
            packet(FlowKind::Control, Direction::Upload, 999),
        ];
        assert_eq!(uploaded_payload(&packets), 1500);
    }

    #[test]
    fn overhead_ratio_matches_manual_computation() {
        // 10 kB of benchmark data moved with 11 kB storage wire + 1 kB control.
        let packets = vec![
            packet(FlowKind::Storage, Direction::Upload, 11_000 - TCP_HEADER_BYTES),
            packet(FlowKind::Control, Direction::Upload, 1_000 - TCP_HEADER_BYTES),
        ];
        let ratio = overhead_ratio(&packets, 10_000);
        assert!((ratio - 1.2).abs() < 1e-9, "ratio was {ratio}");
    }

    #[test]
    fn overhead_can_exceed_one_by_a_lot() {
        // Cloud Drive-style: 5 MB exchanged for 1 MB of content.
        let packets: Vec<_> = (0..5000)
            .map(|_| packet(FlowKind::Control, Direction::Upload, 1000 - TCP_HEADER_BYTES))
            .collect();
        let ratio = overhead_ratio(&packets, 1_000_000);
        assert!(ratio > 4.9 && ratio < 5.1);
    }

    #[test]
    #[should_panic(expected = "benchmark size must be positive")]
    fn overhead_rejects_zero_benchmark() {
        let _ = overhead_ratio(&[], 0);
    }

    #[test]
    fn empty_trace_volume_is_zero() {
        let v = TrafficVolume::from_packets(&[]);
        assert_eq!(v, TrafficVolume::default());
        assert_eq!(v.total(), 0);
        assert_eq!(uploaded_payload(&[]), 0);
    }
}
