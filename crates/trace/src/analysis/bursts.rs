//! Packet-burst detection.
//!
//! §4.2: "SkyDrive and Wuala submit files sequentially, waiting for
//! application layer acknowledgments between each file upload. This can be
//! determined by counting packet bursts, which is proportional to the number
//! of files in our experiments."
//!
//! A *burst* here is a maximal run of upload payload packets whose
//! inter-packet gap never exceeds a threshold; a gap longer than the threshold
//! (the client waiting for an application-level acknowledgement before the
//! next file) terminates the burst.

use crate::packet::{Direction, PacketRecord};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration for burst detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstConfig {
    /// Maximum silence between consecutive upload payload packets for them to
    /// belong to the same burst.
    pub max_gap: SimDuration,
    /// Minimum payload a burst must carry to be reported (filters out control
    /// chatter).
    pub min_bytes: u64,
}

impl Default for BurstConfig {
    fn default() -> Self {
        // One RTT to the farthest data centres in the study is ~160 ms and the
        // application-level acknowledgement adds server think time on top, so
        // 200 ms separates per-file acks from in-transfer pacing gaps.
        BurstConfig { max_gap: SimDuration::from_millis(200), min_bytes: 1024 }
    }
}

/// One detected burst of upload traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Burst {
    /// Timestamp of the first payload packet of the burst.
    pub start: SimTime,
    /// Timestamp of the last payload packet of the burst.
    pub end: SimTime,
    /// Upload payload bytes carried by the burst.
    pub bytes: u64,
    /// Number of upload payload packets in the burst.
    pub packets: u64,
}

impl Burst {
    /// Duration of the burst.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Detects upload payload bursts in a timestamp-sorted packet trace.
///
/// Only packets in the [`Direction::Upload`] direction that carry payload are
/// considered; the packets of all storage flows are merged, mirroring the
/// paper's per-trace (not per-flow) burst counting.
pub fn detect_bursts(packets: &[PacketRecord], config: BurstConfig) -> Vec<Burst> {
    let mut bursts = Vec::new();
    let mut current: Option<Burst> = None;

    let relevant = packets.iter().filter(|p| p.direction == Direction::Upload && p.has_payload());

    for p in relevant {
        match current.as_mut() {
            Some(burst) if p.timestamp - burst.end <= config.max_gap => {
                burst.end = p.timestamp;
                burst.bytes += p.payload_len as u64;
                burst.packets += 1;
            }
            _ => {
                if let Some(done) = current.take() {
                    if done.bytes >= config.min_bytes {
                        bursts.push(done);
                    }
                }
                current = Some(Burst {
                    start: p.timestamp,
                    end: p.timestamp,
                    bytes: p.payload_len as u64,
                    packets: 1,
                });
            }
        }
    }
    if let Some(done) = current {
        if done.bytes >= config.min_bytes {
            bursts.push(done);
        }
    }
    bursts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowId, FlowKind};
    use crate::packet::{Endpoint, TcpFlags, TransportProtocol, MSS, TCP_HEADER_BYTES};

    fn upload(t_ms: u64, payload: u32) -> PacketRecord {
        PacketRecord {
            timestamp: SimTime::from_millis(t_ms),
            src: Endpoint::from_octets(192, 168, 1, 10, 50000),
            dst: Endpoint::from_octets(10, 0, 0, 1, 443),
            protocol: TransportProtocol::Tcp,
            flags: TcpFlags::ACK,
            payload_len: payload,
            header_len: TCP_HEADER_BYTES,
            direction: Direction::Upload,
            flow: FlowId(0),
            kind: FlowKind::Storage,
        }
    }

    fn download(t_ms: u64, payload: u32) -> PacketRecord {
        PacketRecord { direction: Direction::Download, ..upload(t_ms, payload) }
    }

    /// Builds a synthetic trace of `files` sequential file uploads separated by
    /// an application-level acknowledgement gap.
    fn sequential_upload_trace(
        files: usize,
        packets_per_file: usize,
        ack_gap_ms: u64,
    ) -> Vec<PacketRecord> {
        let mut trace = Vec::new();
        let mut t = 0u64;
        for _ in 0..files {
            for _ in 0..packets_per_file {
                trace.push(upload(t, MSS));
                t += 1; // back-to-back segments, 1 ms apart
            }
            trace.push(download(t + 1, 200)); // application-level ack
            t += ack_gap_ms;
        }
        trace
    }

    #[test]
    fn burst_count_tracks_file_count_for_sequential_uploads() {
        for files in [1usize, 5, 10] {
            let trace = sequential_upload_trace(files, 7, 500);
            let bursts = detect_bursts(&trace, BurstConfig::default());
            assert_eq!(bursts.len(), files, "expected one burst per file");
            for b in &bursts {
                assert_eq!(b.packets, 7);
                assert_eq!(b.bytes, 7 * MSS as u64);
            }
        }
    }

    #[test]
    fn bundled_upload_is_a_single_burst() {
        // A bundling client streams all files back-to-back: one burst only.
        let trace = sequential_upload_trace(10, 7, 10); // gaps below the 200 ms threshold
        let bursts = detect_bursts(&trace, BurstConfig::default());
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].packets, 70);
    }

    #[test]
    fn small_bursts_are_filtered_by_min_bytes() {
        let trace = vec![upload(0, 100), upload(500, 100)];
        let bursts = detect_bursts(&trace, BurstConfig::default());
        assert!(bursts.is_empty(), "bursts below min_bytes are dropped");
        let cfg = BurstConfig { min_bytes: 0, ..BurstConfig::default() };
        assert_eq!(detect_bursts(&trace, cfg).len(), 2);
    }

    #[test]
    fn download_packets_do_not_contribute() {
        let trace = vec![download(0, 5000), download(10, 5000)];
        assert!(detect_bursts(&trace, BurstConfig::default()).is_empty());
    }

    #[test]
    fn burst_duration_and_empty_trace() {
        let trace = sequential_upload_trace(1, 5, 500);
        let bursts = detect_bursts(&trace, BurstConfig::default());
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].duration(), SimDuration::from_millis(4));
        assert!(detect_bursts(&[], BurstConfig::default()).is_empty());
    }
}
