//! TCP SYN counting.
//!
//! §4.2 of the paper infers the (lack of a) bundling strategy by counting the
//! TCP connections a client opens while uploading a batch of files: Google
//! Drive opens one TCP (and SSL) connection *per file* and Amazon Cloud Drive
//! adds three control connections per file operation, so uploading 100 files
//! of 10 kB produced 100 and 400 SYN packets respectively (Fig. 3).

use crate::flow::FlowKind;
use crate::packet::PacketRecord;
use crate::series::CumulativeSeries;

/// Counts the client-initiated TCP SYN packets in a trace.
pub fn syn_count(packets: &[PacketRecord]) -> u64 {
    packets.iter().filter(|p| p.is_syn()).count() as u64
}

/// Counts client-initiated TCP SYN packets per traffic class.
pub fn syn_count_by_kind(packets: &[PacketRecord], kind: FlowKind) -> u64 {
    packets.iter().filter(|p| p.is_syn() && p.kind == kind).count() as u64
}

/// Builds the cumulative-SYN-versus-time step series plotted in Fig. 3.
pub fn cumulative_syns(packets: &[PacketRecord]) -> CumulativeSeries {
    CumulativeSeries::from_events(packets.iter().filter(|p| p.is_syn()).map(|p| (p.timestamp, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowId;
    use crate::packet::{Direction, Endpoint, TcpFlags, TransportProtocol, TCP_HEADER_BYTES};
    use crate::time::SimTime;

    fn syn_packet(flow: u64, t_ms: u64, kind: FlowKind) -> PacketRecord {
        PacketRecord {
            timestamp: SimTime::from_millis(t_ms),
            src: Endpoint::from_octets(192, 168, 1, 10, 50000),
            dst: Endpoint::from_octets(10, 0, 0, 1, 443),
            protocol: TransportProtocol::Tcp,
            flags: TcpFlags::SYN,
            payload_len: 0,
            header_len: TCP_HEADER_BYTES,
            direction: Direction::Upload,
            flow: FlowId(flow),
            kind,
        }
    }

    fn data_packet(flow: u64, t_ms: u64) -> PacketRecord {
        PacketRecord {
            flags: TcpFlags::ACK,
            payload_len: 1000,
            ..syn_packet(flow, t_ms, FlowKind::Storage)
        }
    }

    #[test]
    fn counts_only_pure_syns() {
        let packets = vec![
            syn_packet(0, 0, FlowKind::Control),
            data_packet(0, 10),
            syn_packet(1, 20, FlowKind::Storage),
            syn_packet(2, 30, FlowKind::Storage),
            data_packet(2, 40),
        ];
        assert_eq!(syn_count(&packets), 3);
        assert_eq!(syn_count_by_kind(&packets, FlowKind::Storage), 2);
        assert_eq!(syn_count_by_kind(&packets, FlowKind::Control), 1);
        assert_eq!(syn_count_by_kind(&packets, FlowKind::Dns), 0);
    }

    #[test]
    fn cumulative_series_matches_fig3_shape() {
        // 4 connections opened at 1 s intervals.
        let packets: Vec<_> = (0..4).map(|i| syn_packet(i, i * 1000, FlowKind::Storage)).collect();
        let series = cumulative_syns(&packets);
        assert_eq!(series.total(), 4.0);
        assert_eq!(series.value_at(SimTime::from_millis(500)), 1.0);
        assert_eq!(series.value_at(SimTime::from_millis(2500)), 3.0);
        assert_eq!(series.time_to_reach(4.0), Some(SimTime::from_secs(3)));
    }

    #[test]
    fn empty_trace_has_no_syns() {
        assert_eq!(syn_count(&[]), 0);
        assert!(cumulative_syns(&[]).is_empty());
    }
}
