//! Flow identification and accounting.
//!
//! The paper distinguishes *control* flows (login, notification, metadata
//! commits) from *storage* flows (actual file content) and derives metrics
//! like synchronization start-up time ("time until the first storage flow is
//! observed") and protocol overhead ("total storage and control traffic over
//! the benchmark size") from this classification. §3.1 notes that all
//! services except Wuala use dedicated servers for control and storage, so
//! flows can be classified simply by their destination; for Wuala the paper
//! falls back to flow sizes and connection sequences — the simulator tags
//! flows at creation time, and a heuristic classifier is provided for the
//! Wuala-style analysis.

use crate::packet::{Direction, Endpoint, PacketRecord};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Unique identifier of a flow (a five-tuple instance) within one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

/// Traffic class of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FlowKind {
    /// Login / metadata / commit traffic towards control servers.
    Control,
    /// Bulk file content towards storage servers.
    Storage,
    /// Background keep-alive / notification traffic (e.g. Dropbox's plain-HTTP
    /// notification protocol, periodic polling while idle).
    Notification,
    /// Name resolution traffic towards DNS resolvers.
    Dns,
}

impl FlowKind {
    /// Every flow kind, for exhaustive per-kind accounting.
    pub const ALL: [FlowKind; 4] =
        [FlowKind::Control, FlowKind::Storage, FlowKind::Notification, FlowKind::Dns];

    /// True for the kinds the paper's §3.1 idle capture counts as
    /// control-plane ("background") traffic: login/metadata exchanges and
    /// the keep-alive/notification channels. The Fig. 1 accounting and the
    /// fleet's background-vs-payload split both use this predicate so they
    /// can never drift apart.
    pub fn is_control_plane(self) -> bool {
        matches!(self, FlowKind::Control | FlowKind::Notification)
    }
}

impl fmt::Display for FlowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlowKind::Control => "control",
            FlowKind::Storage => "storage",
            FlowKind::Notification => "notification",
            FlowKind::Dns => "dns",
        };
        write!(f, "{s}")
    }
}

/// Aggregate statistics for a single flow, built from its packets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowStats {
    /// The flow identifier.
    pub id: FlowId,
    /// Client-side endpoint (the test computer).
    pub client: Endpoint,
    /// Server-side endpoint.
    pub server: Endpoint,
    /// Traffic class the flow was tagged with.
    pub kind: FlowKind,
    /// Timestamp of the first packet (usually the SYN).
    pub first_packet: SimTime,
    /// Timestamp of the last packet.
    pub last_packet: SimTime,
    /// Timestamp of the first packet carrying payload, if any.
    pub first_payload: Option<SimTime>,
    /// Timestamp of the last packet carrying payload, if any.
    pub last_payload: Option<SimTime>,
    /// Number of packets observed in the upload direction.
    pub packets_up: u64,
    /// Number of packets observed in the download direction.
    pub packets_down: u64,
    /// Application payload bytes uploaded.
    pub payload_up: u64,
    /// Application payload bytes downloaded.
    pub payload_down: u64,
    /// Total wire bytes uploaded (headers + payload).
    pub wire_up: u64,
    /// Total wire bytes downloaded (headers + payload).
    pub wire_down: u64,
    /// Number of connection-opening SYN packets seen (0 for UDP flows, 1 for TCP).
    pub syn_count: u64,
}

impl FlowStats {
    fn from_first_packet(p: &PacketRecord) -> FlowStats {
        let (client, server) = match p.direction {
            Direction::Upload => (p.src, p.dst),
            Direction::Download => (p.dst, p.src),
        };
        let mut stats = FlowStats {
            id: p.flow,
            client,
            server,
            kind: p.kind,
            first_packet: p.timestamp,
            last_packet: p.timestamp,
            first_payload: None,
            last_payload: None,
            packets_up: 0,
            packets_down: 0,
            payload_up: 0,
            payload_down: 0,
            wire_up: 0,
            wire_down: 0,
            syn_count: 0,
        };
        stats.absorb(p);
        stats
    }

    fn absorb(&mut self, p: &PacketRecord) {
        debug_assert_eq!(p.flow, self.id);
        self.last_packet = self.last_packet.max(p.timestamp);
        self.first_packet = self.first_packet.min(p.timestamp);
        if p.has_payload() {
            self.first_payload = Some(match self.first_payload {
                Some(t) => t.min(p.timestamp),
                None => p.timestamp,
            });
            self.last_payload = Some(match self.last_payload {
                Some(t) => t.max(p.timestamp),
                None => p.timestamp,
            });
        }
        match p.direction {
            Direction::Upload => {
                self.packets_up += 1;
                self.payload_up += p.payload_len as u64;
                self.wire_up += p.wire_len();
            }
            Direction::Download => {
                self.packets_down += 1;
                self.payload_down += p.payload_len as u64;
                self.wire_down += p.wire_len();
            }
        }
        if p.is_syn() {
            self.syn_count += 1;
        }
    }

    /// Total wire bytes in both directions.
    pub fn wire_total(&self) -> u64 {
        self.wire_up + self.wire_down
    }

    /// Total payload bytes in both directions.
    pub fn payload_total(&self) -> u64 {
        self.payload_up + self.payload_down
    }

    /// Duration between the first and the last packet of the flow.
    pub fn duration(&self) -> crate::time::SimDuration {
        self.last_packet - self.first_packet
    }
}

/// Flow table: aggregates a packet stream into per-flow statistics.
///
/// The table preserves insertion order by flow id (flows are numbered in the
/// order the simulator opened them), which the Wuala-style "connection
/// sequence" heuristics rely on.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    flows: BTreeMap<FlowId, FlowStats>,
}

impl FlowTable {
    /// Creates an empty flow table.
    pub fn new() -> Self {
        FlowTable { flows: BTreeMap::new() }
    }

    /// Builds a flow table from a packet slice.
    pub fn from_packets<'a, I: IntoIterator<Item = &'a PacketRecord>>(packets: I) -> Self {
        let mut table = FlowTable::new();
        for p in packets {
            table.add_packet(p);
        }
        table
    }

    /// Adds one packet to the table.
    pub fn add_packet(&mut self, p: &PacketRecord) {
        self.flows
            .entry(p.flow)
            .and_modify(|f| f.absorb(p))
            .or_insert_with(|| FlowStats::from_first_packet(p));
    }

    /// Number of flows observed.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flow has been observed.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Looks up one flow.
    pub fn get(&self, id: FlowId) -> Option<&FlowStats> {
        self.flows.get(&id)
    }

    /// Iterates over all flows in flow-id (creation) order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowStats> {
        self.flows.values()
    }

    /// Iterates over the flows of a given traffic class.
    pub fn of_kind(&self, kind: FlowKind) -> impl Iterator<Item = &FlowStats> {
        self.flows.values().filter(move |f| f.kind == kind)
    }

    /// Total wire bytes across all flows of a traffic class.
    pub fn wire_bytes(&self, kind: FlowKind) -> u64 {
        self.of_kind(kind).map(|f| f.wire_total()).sum()
    }

    /// Total wire bytes across every flow in the trace.
    pub fn wire_bytes_total(&self) -> u64 {
        self.flows.values().map(|f| f.wire_total()).sum()
    }

    /// Number of TCP connections opened (client SYNs) for a traffic class.
    pub fn connections(&self, kind: FlowKind) -> u64 {
        self.of_kind(kind).map(|f| f.syn_count).sum()
    }

    /// Classifies flows the way the paper does for Wuala (§3.1), where control
    /// and storage share servers: a flow is labelled storage when it carries at
    /// least `storage_threshold` payload bytes, control otherwise. Returns the
    /// flow ids that would be re-labelled storage by the heuristic.
    pub fn classify_by_size(&self, storage_threshold: u64) -> Vec<FlowId> {
        self.flows
            .values()
            .filter(|f| f.payload_total() >= storage_threshold)
            .map(|f| f.id)
            .collect()
    }

    /// Timestamp of the first payload packet over flows of a class, if any.
    pub fn first_payload(&self, kind: FlowKind) -> Option<SimTime> {
        self.of_kind(kind).filter_map(|f| f.first_payload).min()
    }

    /// Timestamp of the last payload packet over flows of a class, if any.
    pub fn last_payload(&self, kind: FlowKind) -> Option<SimTime> {
        self.of_kind(kind).filter_map(|f| f.last_payload).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{TcpFlags, TransportProtocol, MSS, TCP_HEADER_BYTES};

    fn packet(
        flow: u64,
        t_ms: u64,
        dir: Direction,
        flags: TcpFlags,
        payload: u32,
        kind: FlowKind,
    ) -> PacketRecord {
        let client = Endpoint::from_octets(192, 168, 1, 10, 50000 + flow as u16);
        let server = Endpoint::from_octets(10, 0, 0, 1, 443);
        let (src, dst) = match dir {
            Direction::Upload => (client, server),
            Direction::Download => (server, client),
        };
        PacketRecord {
            timestamp: SimTime::from_millis(t_ms),
            src,
            dst,
            protocol: TransportProtocol::Tcp,
            flags,
            payload_len: payload,
            header_len: TCP_HEADER_BYTES,
            direction: dir,
            flow: FlowId(flow),
            kind,
        }
    }

    fn handshake_and_data(
        flow: u64,
        start_ms: u64,
        kind: FlowKind,
        data_packets: u32,
    ) -> Vec<PacketRecord> {
        let mut v = vec![
            packet(flow, start_ms, Direction::Upload, TcpFlags::SYN, 0, kind),
            packet(flow, start_ms + 50, Direction::Download, TcpFlags::SYN_ACK, 0, kind),
            packet(flow, start_ms + 100, Direction::Upload, TcpFlags::ACK, 0, kind),
        ];
        for i in 0..data_packets {
            v.push(packet(
                flow,
                start_ms + 110 + i as u64,
                Direction::Upload,
                TcpFlags::ACK,
                MSS,
                kind,
            ));
        }
        v
    }

    #[test]
    fn flow_stats_accumulate_packets() {
        let packets = handshake_and_data(1, 0, FlowKind::Storage, 3);
        let table = FlowTable::from_packets(&packets);
        assert_eq!(table.len(), 1);
        let f = table.get(FlowId(1)).unwrap();
        assert_eq!(f.syn_count, 1);
        assert_eq!(f.packets_up, 5); // SYN + ACK + 3 data
        assert_eq!(f.packets_down, 1); // SYN-ACK
        assert_eq!(f.payload_up, 3 * MSS as u64);
        assert_eq!(f.payload_down, 0);
        assert_eq!(f.first_packet, SimTime::ZERO);
        assert_eq!(f.first_payload, Some(SimTime::from_millis(110)));
        assert_eq!(f.last_payload, Some(SimTime::from_millis(112)));
        assert_eq!(f.wire_up, 5 * TCP_HEADER_BYTES as u64 + 3 * MSS as u64);
        assert!(f.duration().as_micros() > 0);
    }

    #[test]
    fn flows_are_separated_by_id_and_kind() {
        let mut packets = handshake_and_data(1, 0, FlowKind::Control, 1);
        packets.extend(handshake_and_data(2, 500, FlowKind::Storage, 10));
        packets.extend(handshake_and_data(3, 900, FlowKind::Storage, 5));
        let table = FlowTable::from_packets(&packets);
        assert_eq!(table.len(), 3);
        assert_eq!(table.of_kind(FlowKind::Storage).count(), 2);
        assert_eq!(table.of_kind(FlowKind::Control).count(), 1);
        assert_eq!(table.connections(FlowKind::Storage), 2);
        assert_eq!(table.connections(FlowKind::Control), 1);
        assert_eq!(table.first_payload(FlowKind::Storage), Some(SimTime::from_millis(610)));
        assert_eq!(table.last_payload(FlowKind::Storage), Some(SimTime::from_millis(1014)));
        assert!(table.first_payload(FlowKind::Dns).is_none());
    }

    #[test]
    fn wire_byte_totals_are_consistent() {
        let mut packets = handshake_and_data(1, 0, FlowKind::Control, 2);
        packets.extend(handshake_and_data(2, 100, FlowKind::Storage, 4));
        let table = FlowTable::from_packets(&packets);
        let total = table.wire_bytes_total();
        assert_eq!(
            total,
            table.wire_bytes(FlowKind::Control) + table.wire_bytes(FlowKind::Storage)
        );
        assert!(total > 0);
    }

    #[test]
    fn size_based_classification_flags_large_flows() {
        let mut packets = handshake_and_data(1, 0, FlowKind::Control, 1); // ~1.4 kB
        packets.extend(handshake_and_data(2, 100, FlowKind::Control, 100)); // ~146 kB
        let table = FlowTable::from_packets(&packets);
        let storage_like = table.classify_by_size(50_000);
        assert_eq!(storage_like, vec![FlowId(2)]);
    }

    #[test]
    fn empty_table_behaves() {
        let table = FlowTable::new();
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
        assert_eq!(table.wire_bytes_total(), 0);
        assert_eq!(table.connections(FlowKind::Storage), 0);
        assert!(table.first_payload(FlowKind::Storage).is_none());
        assert!(table.get(FlowId(1)).is_none());
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", FlowId(3)), "flow#3");
        assert_eq!(format!("{}", FlowKind::Storage), "storage");
        assert_eq!(format!("{}", FlowKind::Control), "control");
        assert_eq!(format!("{}", FlowKind::Notification), "notification");
        assert_eq!(format!("{}", FlowKind::Dns), "dns");
    }
}
