//! # cloudsim-trace
//!
//! Packet and flow trace records, capture sinks, and trace analyzers.
//!
//! The IMC'13 benchmarking methodology ("Benchmarking Personal Cloud Storage",
//! Drago et al.) derives every metric from *captured traffic*: the number of
//! TCP SYN packets reveals how many connections a client opens (Fig. 3),
//! pauses in the upload throughput reveal chunking (§4.1), packet bursts
//! reveal sequential per-file submission (§4.2), the byte volume in storage
//! flows vs. the benchmark payload gives protocol overhead (Fig. 6c), and the
//! timestamps of the first/last storage payload packets give synchronization
//! start-up delay and completion time (Fig. 6a/6b).
//!
//! This crate provides the trace substrate used by the network simulator
//! ([`cloudsim-net`](https://crates.io/crates/cloudsim-net)) in place of a
//! real packet capture (tcpdump/libpcap in the original testbed):
//!
//! * [`time`] — the virtual time base shared by the whole workspace,
//! * [`packet`] — per-packet records with TCP flags, direction and sizes,
//! * [`flow`] — flow identification, per-flow accounting and classification
//!   into control / storage / notification traffic,
//! * [`capture`] — sharded, lock-free capture: per-worker
//!   [`capture::TraceShard`]s handed out by a [`capture::TraceRecorder`],
//!   k-way merged into a frozen [`capture::Trace`] and read through the
//!   borrowed [`capture::TraceView`],
//! * [`analysis`] — the analyzers used by the benchmark suite (SYN series,
//!   burst detection, throughput/pause detection, volume and overhead,
//!   start-up / completion timelines),
//! * [`series`] — small time-series helpers used when rendering figures,
//! * [`hist`] — log-bucketed latency histograms with fixed boundaries, so
//!   per-worker merges are order-independent and quantiles bit-stable.
//!
//! Records are plain serde-serializable structs so traces can be exported and
//! inspected offline, mirroring how the original study post-processed pcap
//! files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod capture;
pub mod flow;
pub mod hist;
pub mod packet;
pub mod series;
pub mod time;

pub use capture::{Trace, TraceRecorder, TraceShard, TraceView, SHARD_FLOW_SPAN};
pub use flow::{FlowId, FlowKind, FlowStats, FlowTable};
pub use hist::{HistogramSummary, LatencyHistogram};
pub use packet::{Direction, Endpoint, PacketRecord, TcpFlags, TransportProtocol};
pub use time::{SimDuration, SimTime};
