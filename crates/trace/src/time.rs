//! Virtual time base for the whole simulation workspace.
//!
//! All timestamps in the simulator and in captured traces are expressed as
//! [`SimTime`], a monotonically increasing count of microseconds since the
//! start of an experiment. Durations are expressed as [`SimDuration`].
//!
//! Microsecond resolution is sufficient: the finest-grained quantities in the
//! reproduced paper are packet inter-arrival times on a 1 Gb/s link
//! (a 1500-byte frame lasts 12 µs).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in microseconds since experiment start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of virtual time (experiment start).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time stamp from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time stamp from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time stamp from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates a time stamp from fractional seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "SimTime cannot be negative");
        SimTime((s * 1e6).round() as u64)
    }

    /// Raw microseconds since experiment start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since experiment start (fractional).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since experiment start (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two time stamps.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two time stamps.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "SimDuration cannot be negative");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Creates a duration from fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(ms >= 0.0, "SimDuration cannot be negative");
        SimDuration((ms * 1e3).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds (fractional).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True when the duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration it takes to move `bytes` bytes over a link of `bits_per_sec`.
    ///
    /// Used pervasively by the flow-level TCP model; bandwidth of zero is a
    /// programming error and panics.
    pub fn for_transmission(bytes: u64, bits_per_sec: u64) -> SimDuration {
        assert!(bits_per_sec > 0, "bandwidth must be positive");
        let bits = bytes as u128 * 8;
        let us = (bits * 1_000_000).div_ceil(bits_per_sec as u128);
        SimDuration(us as u64)
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        assert!(rhs >= 0.0, "cannot scale a duration by a negative factor");
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion_roundtrip() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert!((SimTime::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn duration_construction() {
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_millis(10).as_micros(), 10_000);
        assert_eq!(SimDuration::from_millis_f64(0.5).as_micros(), 500);
        assert_eq!(SimDuration::from_secs_f64(0.000001).as_micros(), 1);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_micros(1).is_zero());
    }

    #[test]
    fn arithmetic_between_times_and_durations() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!(t + d, SimTime::from_secs(13));
        assert_eq!(t - d, SimTime::from_secs(7));
        assert_eq!(SimTime::from_secs(13) - t, SimDuration::from_secs(3));
        // Subtraction saturates rather than panicking or wrapping.
        assert_eq!(SimTime::from_secs(1) - SimDuration::from_secs(5), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(1) - SimTime::from_secs(5), SimDuration::ZERO);
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut t = SimTime::from_secs(1);
        t += SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);

        let mut d = SimDuration::from_secs(2);
        d += SimDuration::from_secs(1);
        assert_eq!(d, SimDuration::from_secs(3));
        d -= SimDuration::from_secs(5);
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3u64, SimDuration::from_millis(30));
        assert_eq!(d * 0.5f64, SimDuration::from_millis(5));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(SimDuration::from_secs(1).saturating_mul(u64::MAX).as_micros(), u64::MAX);
    }

    #[test]
    fn transmission_time_on_known_links() {
        // 1500 bytes over 1 Gb/s = 12 us.
        assert_eq!(SimDuration::for_transmission(1500, 1_000_000_000).as_micros(), 12);
        // 1 MB over 8 Mb/s = 1 s.
        assert_eq!(SimDuration::for_transmission(1_000_000, 8_000_000), SimDuration::from_secs(1));
        // Rounds up to the next microsecond.
        assert_eq!(SimDuration::for_transmission(1, 1_000_000_000).as_micros(), 1);
        // Zero bytes take zero time.
        assert_eq!(SimDuration::for_transmission(0, 10), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn transmission_with_zero_bandwidth_panics() {
        let _ = SimDuration::for_transmission(10, 0);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs(1).max(SimDuration::from_secs(2)),
            SimDuration::from_secs(2)
        );
        assert_eq!(
            SimDuration::from_secs(1).min(SimDuration::from_secs(2)),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimTime::from_secs(1)), "1.000000s");
    }
}
