//! Trace capture: the synthetic equivalent of running tcpdump on the testbed.
//!
//! Capture is *sharded*: each worker records into a private, lock-free
//! [`TraceShard`] handed out by a [`TraceRecorder`]. Flow ids are carved from
//! per-shard bases ([`SHARD_FLOW_SPAN`] ids per shard) so allocation stays
//! deterministic without any cross-thread coordination, and
//! [`TraceRecorder::finish`] k-way merges the shards by the
//! `(timestamp, flow, seq)` total order into a frozen [`Trace`] — bit-identical
//! to a single-shard capture for any worker count. Reads go through the one
//! borrowed view type, [`TraceView`], which the analyzers in
//! [`crate::analysis`] consume.

use crate::flow::{FlowId, FlowKind, FlowTable};
use crate::packet::PacketRecord;
use crate::time::SimTime;
use std::collections::BinaryHeap;

/// Number of flow ids reserved for each shard: shard `i` allocates ids in
/// `[i * SHARD_FLOW_SPAN, (i + 1) * SHARD_FLOW_SPAN)`. 2^40 ids per shard is
/// unreachable in practice (a million-client run opens ~10^7 flows), so shard
/// ranges never collide and shard 0 reproduces the historical sequential
/// `0, 1, 2, …` allocation exactly.
pub const SHARD_FLOW_SPAN: u64 = 1 << 40;

/// One worker's private, lock-free capture shard.
///
/// A shard is plain owned data: protocol endpoints append packets and
/// allocate flow ids without any synchronisation, and a long-lived fleet
/// client simply moves its shard (inside its simulator) between round
/// workers. Determinism comes from structure, not locking — each shard owns a
/// disjoint flow-id range, and the merge key recovers one canonical packet
/// order whatever the shard count was.
#[derive(Debug, Clone)]
pub struct TraceShard {
    index: usize,
    packets: Vec<PacketRecord>,
    next_flow: u64,
}

impl Default for TraceShard {
    fn default() -> Self {
        TraceShard::new()
    }
}

impl TraceShard {
    /// Creates the canonical single-worker shard (index 0), whose flow ids
    /// are the historical sequential `0, 1, 2, …`.
    pub fn new() -> Self {
        TraceShard::with_index(0)
    }

    /// Creates the shard for worker `index`, allocating flow ids from
    /// `index * SHARD_FLOW_SPAN`.
    pub fn with_index(index: usize) -> Self {
        TraceShard { index, packets: Vec::new(), next_flow: 0 }
    }

    /// The worker index this shard was carved for.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Preallocates room for `additional` more packets, so steady-state
    /// recording never reallocates mid-run.
    pub fn reserve(&mut self, additional: usize) {
        self.packets.reserve(additional);
    }

    /// Allocates a fresh flow id from this shard's private range. Within a
    /// shard, ids are handed out in connection-open order, which the
    /// sequence-based analyses rely on.
    pub fn allocate_flow(&mut self) -> FlowId {
        let id = FlowId(self.index as u64 * SHARD_FLOW_SPAN + self.next_flow);
        self.next_flow += 1;
        id
    }

    /// Appends a packet record.
    ///
    /// Packets may be recorded slightly out of order by independent protocol
    /// endpoints; the merge in [`TraceRecorder::finish`] (or a sorted
    /// [`TraceView::sorted`] snapshot) restores the canonical
    /// `(timestamp, flow, seq)` order, exactly like a pcap file is processed
    /// in timestamp order.
    pub fn record(&mut self, packet: PacketRecord) {
        self.packets.push(packet);
    }

    /// Read view of this shard's capture, in insertion (`seq`) order.
    pub fn view(&self) -> TraceView<'_> {
        TraceView { packets: &self.packets }
    }

    /// Consumes the shard, returning its packets in the canonical
    /// `(timestamp, flow, seq)` order.
    pub fn into_packets(mut self) -> Vec<PacketRecord> {
        sort_canonical(&mut self.packets);
        self.packets
    }
}

/// Hands per-worker [`TraceShard`]s out and merges them back into one frozen
/// [`Trace`].
///
/// The lifecycle is: carve (`with_shards`/`into_shards`), record (each worker
/// appends to its own shard), merge (`from_shards` + [`TraceRecorder::finish`]).
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    shards: Vec<TraceShard>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl TraceRecorder {
    /// Creates a single-shard recorder — the sequential-capture baseline the
    /// sharded merge must reproduce bit for bit.
    pub fn new() -> Self {
        TraceRecorder::with_shards(1)
    }

    /// Creates a recorder with `shards` worker shards (at least one), each
    /// owning a disjoint flow-id range.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        TraceRecorder { shards: (0..shards).map(TraceShard::with_index).collect() }
    }

    /// Rebuilds a recorder from worker shards (in any order) for merging.
    pub fn from_shards(mut shards: Vec<TraceShard>) -> Self {
        shards.sort_by_key(|s| s.index);
        TraceRecorder { shards }
    }

    /// Splits the recorder into its worker shards, one per worker.
    pub fn into_shards(self) -> Vec<TraceShard> {
        self.shards
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The worker shards, for in-place recording without splitting.
    pub fn shards_mut(&mut self) -> &mut [TraceShard] {
        &mut self.shards
    }

    /// Freezes the capture: k-way merges every shard by the canonical
    /// `(timestamp, flow, seq)` total order into a [`Trace`].
    ///
    /// Each shard is first sorted to canonical order (stable, so `seq` —
    /// the per-shard insertion index — breaks `(timestamp, flow)` ties), then
    /// the sorted runs are heap-merged. Because each flow's packets live in
    /// exactly one shard, the merged order is independent of how work was
    /// assigned to shards: single-shard and k-shard captures of the same
    /// packets are bit-identical.
    pub fn finish(self) -> Trace {
        let mut runs: Vec<Vec<PacketRecord>> = self
            .shards
            .into_iter()
            .map(|mut shard| {
                sort_canonical(&mut shard.packets);
                shard.packets
            })
            .collect();
        runs.retain(|r| !r.is_empty());
        let total = runs.iter().map(Vec::len).sum();
        if runs.len() == 1 {
            return Trace { packets: runs.pop().expect("one run") };
        }

        // K-way merge of the sorted runs. `Reverse` ordering on the canonical
        // key turns the max-heap into a min-heap; the run index is the final
        // tie-breaker so the heap order is total (cross-shard key ties cannot
        // occur — flows are shard-private — but the comparator must not care).
        let mut packets = Vec::with_capacity(total);
        let mut cursors: Vec<std::vec::IntoIter<PacketRecord>> =
            runs.into_iter().map(Vec::into_iter).collect();
        let mut fronts: Vec<Option<PacketRecord>> =
            cursors.iter_mut().map(Iterator::next).collect();
        let mut heap: BinaryHeap<std::cmp::Reverse<(SimTime, FlowId, usize)>> =
            BinaryHeap::with_capacity(cursors.len());
        for (run, front) in fronts.iter().enumerate() {
            if let Some(p) = front {
                heap.push(std::cmp::Reverse((p.timestamp, p.flow, run)));
            }
        }
        while let Some(std::cmp::Reverse((_, _, run))) = heap.pop() {
            packets.push(fronts[run].take().expect("heap entry implies a buffered front"));
            if let Some(next) = cursors[run].next() {
                heap.push(std::cmp::Reverse((next.timestamp, next.flow, run)));
                fronts[run] = Some(next);
            }
        }
        Trace { packets }
    }
}

/// Stable sort to the canonical `(timestamp, flow, seq)` order; `seq` is the
/// insertion index, supplied by stability.
fn sort_canonical(packets: &mut [PacketRecord]) {
    packets.sort_by_key(|p| (p.timestamp, p.flow));
}

/// A frozen, canonically ordered packet trace for one experiment run.
///
/// Produced by [`TraceRecorder::finish`]; read through [`Trace::view`] and
/// the analyzers in [`crate::analysis`].
#[derive(Debug, Default, Clone)]
pub struct Trace {
    packets: Vec<PacketRecord>,
}

impl Trace {
    /// Read view of the merged capture.
    pub fn view(&self) -> TraceView<'_> {
        TraceView { packets: &self.packets }
    }

    /// Consumes the trace, returning the packets in canonical order.
    pub fn into_packets(self) -> Vec<PacketRecord> {
        self.packets
    }
}

/// The one read view over captured packets — borrowed from a [`TraceShard`],
/// a frozen [`Trace`], or any packet slice.
///
/// This replaces the old closure-and-clone access (`TraceHandle::with`,
/// `TraceHandle::snapshot`) and the duplicated forwarding methods that lived
/// on both `Trace` and `TraceHandle`: every reader goes through the same
/// accessors over a borrowed slice, and nothing is cloned unless the caller
/// explicitly asks for a [`TraceView::sorted`] snapshot.
#[derive(Debug, Clone, Copy)]
pub struct TraceView<'a> {
    packets: &'a [PacketRecord],
}

impl<'a> TraceView<'a> {
    /// Wraps a packet slice in the read view.
    pub fn new(packets: &'a [PacketRecord]) -> Self {
        TraceView { packets }
    }

    /// Number of captured packets.
    pub fn len(self) -> usize {
        self.packets.len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(self) -> bool {
        self.packets.is_empty()
    }

    /// The underlying packet records.
    pub fn packets(self) -> &'a [PacketRecord] {
        self.packets
    }

    /// Builds the flow table of the capture.
    pub fn flow_table(self) -> FlowTable {
        FlowTable::from_packets(self.packets)
    }

    /// Total wire bytes across all flows.
    pub fn wire_bytes_total(self) -> u64 {
        self.packets.iter().map(|p| p.wire_len()).sum()
    }

    /// Total wire bytes for one traffic class.
    pub fn wire_bytes(self, kind: FlowKind) -> u64 {
        self.packets.iter().filter(|p| p.kind == kind).map(|p| p.wire_len()).sum()
    }

    /// Timestamp of the last captured packet, if any.
    pub fn last_timestamp(self) -> Option<SimTime> {
        self.packets.iter().map(|p| p.timestamp).max()
    }

    /// Clones the packets into a canonically ordered snapshot.
    pub fn sorted(self) -> Vec<PacketRecord> {
        let mut packets = self.packets.to_vec();
        sort_canonical(&mut packets);
        packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Direction, Endpoint, TcpFlags, TransportProtocol, TCP_HEADER_BYTES};

    fn packet(flow: FlowId, t_us: u64, payload: u32) -> PacketRecord {
        PacketRecord {
            timestamp: SimTime::from_micros(t_us),
            src: Endpoint::from_octets(192, 168, 1, 10, 50000),
            dst: Endpoint::from_octets(10, 0, 0, 1, 443),
            protocol: TransportProtocol::Tcp,
            flags: if payload == 0 { TcpFlags::SYN } else { TcpFlags::ACK },
            payload_len: payload,
            header_len: TCP_HEADER_BYTES,
            direction: Direction::Upload,
            flow,
            kind: FlowKind::Storage,
        }
    }

    #[test]
    fn shard_zero_allocates_the_historical_sequential_ids() {
        let mut shard = TraceShard::new();
        assert_eq!(shard.allocate_flow(), FlowId(0));
        assert_eq!(shard.allocate_flow(), FlowId(1));
        assert_eq!(shard.allocate_flow(), FlowId(2));
    }

    #[test]
    fn shard_flow_ranges_are_disjoint() {
        let mut recorder = TraceRecorder::with_shards(3);
        let ids: Vec<FlowId> =
            recorder.shards_mut().iter_mut().map(|s| s.allocate_flow()).collect();
        assert_eq!(ids, vec![FlowId(0), FlowId(SHARD_FLOW_SPAN), FlowId(2 * SHARD_FLOW_SPAN)]);
        let again: Vec<FlowId> =
            recorder.shards_mut().iter_mut().map(|s| s.allocate_flow()).collect();
        assert_eq!(
            again,
            vec![FlowId(1), FlowId(SHARD_FLOW_SPAN + 1), FlowId(2 * SHARD_FLOW_SPAN + 1)]
        );
    }

    #[test]
    fn finish_sorts_by_timestamp_with_seq_breaking_ties() {
        let mut shard = TraceShard::new();
        let f = shard.allocate_flow();
        shard.record(packet(f, 300, 10));
        shard.record(packet(f, 100, 0));
        shard.record(packet(f, 200, 20));
        shard.record(packet(f, 200, 30));
        let sorted = TraceRecorder::from_shards(vec![shard]).finish().into_packets();
        let ts: Vec<u64> = sorted.iter().map(|p| p.timestamp.as_micros()).collect();
        assert_eq!(ts, vec![100, 200, 200, 300]);
        // seq (insertion order) breaks the t=200 tie.
        assert_eq!(sorted[1].payload_len, 20);
        assert_eq!(sorted[2].payload_len, 30);
    }

    #[test]
    fn sharded_merge_is_bit_identical_to_single_shard_capture() {
        // The same four flows, each with the same packets, captured once on a
        // single shard and once spread over three shards with pure-function
        // flow ids: the finished traces must match exactly.
        let flows: Vec<FlowId> = (0..4).map(FlowId).collect();
        let per_flow: Vec<Vec<PacketRecord>> = flows
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                vec![
                    packet(f, 50 * i as u64 + 10, 0),
                    packet(f, 50 * i as u64 + 20, 100),
                    packet(f, 120, 200), // deliberate cross-flow timestamp tie
                ]
            })
            .collect();

        let mut single = TraceShard::new();
        for pkts in &per_flow {
            for p in pkts {
                single.record(p.clone());
            }
        }
        let reference = TraceRecorder::from_shards(vec![single]).finish().into_packets();

        let mut recorder = TraceRecorder::with_shards(3);
        for (i, pkts) in per_flow.iter().enumerate() {
            // Flow 0 and 3 land on shard 0: shard assignment must not matter.
            let shard = &mut recorder.shards_mut()[i % 3];
            for p in pkts {
                shard.record(p.clone());
            }
        }
        assert_eq!(recorder.finish().into_packets(), reference);
    }

    #[test]
    fn from_shards_accepts_any_shard_order() {
        let mut recorder = TraceRecorder::with_shards(2);
        let f0 = recorder.shards_mut()[0].allocate_flow();
        let f1 = recorder.shards_mut()[1].allocate_flow();
        recorder.shards_mut()[0].record(packet(f0, 20, 0));
        recorder.shards_mut()[1].record(packet(f1, 10, 0));
        let mut shards = recorder.into_shards();
        shards.reverse();
        let merged = TraceRecorder::from_shards(shards).finish();
        let view = merged.view();
        assert_eq!(view.len(), 2);
        assert_eq!(view.packets()[0].flow, f1);
        assert_eq!(view.packets()[1].flow, f0);
    }

    #[test]
    fn byte_accounting_matches_flow_table() {
        let mut shard = TraceShard::new();
        let f = shard.allocate_flow();
        shard.record(packet(f, 10, 0));
        shard.record(packet(f, 20, 1000));
        shard.record(packet(f, 30, 500));
        let view = shard.view();
        let expected = 3 * TCP_HEADER_BYTES as u64 + 1500;
        assert_eq!(view.wire_bytes_total(), expected);
        assert_eq!(view.wire_bytes(FlowKind::Storage), expected);
        assert_eq!(view.wire_bytes(FlowKind::Control), 0);
        let table = view.flow_table();
        assert_eq!(table.wire_bytes_total(), expected);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn empty_capture_edge_cases() {
        let shard = TraceShard::new();
        let view = shard.view();
        assert!(view.is_empty());
        assert_eq!(view.wire_bytes_total(), 0);
        assert!(view.last_timestamp().is_none());
        assert!(view.sorted().is_empty());
        let trace = TraceRecorder::with_shards(4).finish();
        assert!(trace.view().is_empty());
        assert!(trace.into_packets().is_empty());
    }

    #[test]
    fn view_reads_without_cloning() {
        let mut shard = TraceShard::new();
        let f = shard.allocate_flow();
        shard.record(packet(f, 10, 42));
        shard.record(packet(f, 5, 7));
        let view = shard.view();
        assert_eq!(view.len(), 2);
        assert_eq!(view.last_timestamp(), Some(SimTime::from_micros(10)));
        // Insertion order through the view; canonical order via `sorted`.
        assert_eq!(view.packets()[0].payload_len, 42);
        assert_eq!(view.sorted()[0].payload_len, 7);
    }
}
