//! Trace capture: the synthetic equivalent of running tcpdump on the testbed.
//!
//! The simulator's protocol endpoints append [`PacketRecord`]s to a [`Trace`]
//! through a cheaply cloneable [`TraceHandle`]. After an experiment the trace
//! is frozen and handed to the analyzers in [`crate::analysis`].

use crate::flow::{FlowId, FlowKind, FlowTable};
use crate::packet::PacketRecord;
use crate::time::SimTime;
use parking_lot::Mutex;
use std::sync::Arc;

/// A captured packet trace for one experiment run.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    packets: Vec<PacketRecord>,
    next_flow: u64,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { packets: Vec::new(), next_flow: 0 }
    }

    /// Allocates a fresh flow id. Flow ids are handed out in connection-open
    /// order, which the sequence-based analyses rely on.
    pub fn allocate_flow(&mut self) -> FlowId {
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        id
    }

    /// Appends a packet record.
    ///
    /// Packets may be recorded slightly out of order by independent protocol
    /// endpoints; [`Trace::finish`] sorts them by timestamp, exactly like a
    /// pcap file is processed in timestamp order.
    pub fn record(&mut self, packet: PacketRecord) {
        self.packets.push(packet);
    }

    /// Number of packets captured so far.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Read-only view of the captured packets in insertion order.
    pub fn packets(&self) -> &[PacketRecord] {
        &self.packets
    }

    /// Sorts the capture by timestamp (stable, so ties keep insertion order)
    /// and returns the packets.
    pub fn finish(mut self) -> Vec<PacketRecord> {
        self.packets.sort_by_key(|p| p.timestamp);
        self.packets
    }

    /// Builds the flow table of the current capture.
    pub fn flow_table(&self) -> FlowTable {
        FlowTable::from_packets(&self.packets)
    }

    /// Total wire bytes captured so far, across all flows.
    pub fn wire_bytes_total(&self) -> u64 {
        self.packets.iter().map(|p| p.wire_len()).sum()
    }

    /// Total wire bytes captured so far for one traffic class.
    pub fn wire_bytes(&self, kind: FlowKind) -> u64 {
        self.packets.iter().filter(|p| p.kind == kind).map(|p| p.wire_len()).sum()
    }

    /// Timestamp of the last captured packet, if any.
    pub fn last_timestamp(&self) -> Option<SimTime> {
        self.packets.iter().map(|p| p.timestamp).max()
    }
}

/// Shared handle to a [`Trace`].
///
/// Each simulation run is single-threaded, but a long-lived fleet client (and
/// the trace of everything it did) migrates between round workers of the
/// fleet harness, so the handle must be `Send`. The mutex is never contended
/// — exactly one thread drives a simulator at any time — so the lock is a
/// few uncontended atomic operations per packet.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    inner: Arc<Mutex<Trace>>,
}

impl TraceHandle {
    /// Creates a handle to a fresh, empty trace.
    pub fn new() -> Self {
        TraceHandle { inner: Arc::new(Mutex::new(Trace::new())) }
    }

    /// Allocates a fresh flow id.
    pub fn allocate_flow(&self) -> FlowId {
        self.inner.lock().allocate_flow()
    }

    /// Appends a packet record.
    pub fn record(&self, packet: PacketRecord) {
        self.inner.lock().record(packet);
    }

    /// Number of packets captured so far.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Clones the captured packets out of the handle (sorted by timestamp).
    pub fn snapshot(&self) -> Vec<PacketRecord> {
        let mut packets = self.inner.lock().packets.clone();
        packets.sort_by_key(|p| p.timestamp);
        packets
    }

    /// Builds a flow table from the current capture.
    pub fn flow_table(&self) -> FlowTable {
        self.inner.lock().flow_table()
    }

    /// Total wire bytes captured so far.
    pub fn wire_bytes_total(&self) -> u64 {
        self.inner.lock().wire_bytes_total()
    }

    /// Total wire bytes captured so far for one traffic class.
    pub fn wire_bytes(&self, kind: FlowKind) -> u64 {
        self.inner.lock().wire_bytes(kind)
    }

    /// Timestamp of the last captured packet, if any.
    pub fn last_timestamp(&self) -> Option<SimTime> {
        self.inner.lock().last_timestamp()
    }

    /// Runs a closure with read access to the underlying trace.
    pub fn with<R>(&self, f: impl FnOnce(&Trace) -> R) -> R {
        f(&self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Direction, Endpoint, TcpFlags, TransportProtocol, TCP_HEADER_BYTES};

    fn packet(flow: FlowId, t_us: u64, payload: u32) -> PacketRecord {
        PacketRecord {
            timestamp: SimTime::from_micros(t_us),
            src: Endpoint::from_octets(192, 168, 1, 10, 50000),
            dst: Endpoint::from_octets(10, 0, 0, 1, 443),
            protocol: TransportProtocol::Tcp,
            flags: if payload == 0 { TcpFlags::SYN } else { TcpFlags::ACK },
            payload_len: payload,
            header_len: TCP_HEADER_BYTES,
            direction: Direction::Upload,
            flow,
            kind: FlowKind::Storage,
        }
    }

    #[test]
    fn flow_ids_are_allocated_sequentially() {
        let mut trace = Trace::new();
        assert_eq!(trace.allocate_flow(), FlowId(0));
        assert_eq!(trace.allocate_flow(), FlowId(1));
        assert_eq!(trace.allocate_flow(), FlowId(2));
    }

    #[test]
    fn finish_sorts_by_timestamp_stably() {
        let mut trace = Trace::new();
        let f = trace.allocate_flow();
        trace.record(packet(f, 300, 10));
        trace.record(packet(f, 100, 0));
        trace.record(packet(f, 200, 20));
        trace.record(packet(f, 200, 30));
        let sorted = trace.finish();
        let ts: Vec<u64> = sorted.iter().map(|p| p.timestamp.as_micros()).collect();
        assert_eq!(ts, vec![100, 200, 200, 300]);
        // Stability: the two t=200 packets keep their insertion order.
        assert_eq!(sorted[1].payload_len, 20);
        assert_eq!(sorted[2].payload_len, 30);
    }

    #[test]
    fn handle_shares_one_underlying_trace() {
        let handle = TraceHandle::new();
        let h2 = handle.clone();
        let f = handle.allocate_flow();
        h2.record(packet(f, 10, 0));
        handle.record(packet(f, 20, 100));
        assert_eq!(handle.len(), 2);
        assert_eq!(h2.len(), 2);
        assert!(!handle.is_empty());
        let snap = handle.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].timestamp.as_micros(), 10);
        assert_eq!(handle.last_timestamp(), Some(SimTime::from_micros(20)));
    }

    #[test]
    fn byte_accounting_matches_flow_table() {
        let handle = TraceHandle::new();
        let f = handle.allocate_flow();
        handle.record(packet(f, 10, 0));
        handle.record(packet(f, 20, 1000));
        handle.record(packet(f, 30, 500));
        let expected = 3 * TCP_HEADER_BYTES as u64 + 1500;
        assert_eq!(handle.wire_bytes_total(), expected);
        assert_eq!(handle.wire_bytes(FlowKind::Storage), expected);
        assert_eq!(handle.wire_bytes(FlowKind::Control), 0);
        let table = handle.flow_table();
        assert_eq!(table.wire_bytes_total(), expected);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn empty_trace_edge_cases() {
        let trace = Trace::new();
        assert!(trace.is_empty());
        assert_eq!(trace.wire_bytes_total(), 0);
        assert!(trace.last_timestamp().is_none());
        let handle = TraceHandle::new();
        assert!(handle.is_empty());
        assert!(handle.snapshot().is_empty());
        assert!(handle.last_timestamp().is_none());
    }

    #[test]
    fn with_gives_read_access() {
        let handle = TraceHandle::new();
        let f = handle.allocate_flow();
        handle.record(packet(f, 10, 42));
        let count = handle.with(|t| t.packets().len());
        assert_eq!(count, 1);
    }
}
