//! Log-bucketed latency histograms with fixed, merge-stable bucket
//! boundaries.
//!
//! The paper's headline results are *distributions* — sync start-up and
//! completion times per service and per link (Fig. 6a/6b) — so the harness
//! needs more than means. [`LatencyHistogram`] records microsecond durations
//! into a log-linear bucket grid in the HDR-histogram style: 32 one-µs
//! buckets below 32 µs, then 32 sub-buckets per power-of-two octave up to
//! 2^42 µs (~51 virtual days), everything above saturating into the top
//! bucket. The boundaries are compile-time constants, never adapted to the
//! data, so:
//!
//! * recording is a pure function of the value — no rescaling, no state,
//! * merging per-worker histograms is element-wise `u64` addition, which is
//!   commutative and associative: any merge order yields bit-identical
//!   counts, exactly what the deterministic parallel harness requires,
//! * quantiles resolve to a bucket *lower bound*, so `p50/p90/p99/p999` are
//!   reproducible to the bit across reruns and worker counts, with relative
//!   error bounded by the sub-bucket width (≤ 1/32 ≈ 3.1%).
//!
//! An empty histogram has well-defined quantiles (zero) — no `NaN` can ever
//! reach the benchmark gate.

use crate::time::SimDuration;
use serde::Serialize;

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BUCKET_BITS` equal slices.
pub const SUB_BUCKET_BITS: u32 = 5;

/// Sub-buckets per octave (32).
const SUB: usize = 1 << SUB_BUCKET_BITS;

/// One-microsecond linear buckets covering `0..32` µs, below the first
/// octave.
const LINEAR: usize = SUB;

/// Exponent of the first octave: values in `[2^5, 2^6)` µs.
const FIRST_EXP: u32 = SUB_BUCKET_BITS;

/// Exponent of the last octave: values in `[2^41, 2^42)` µs.
const LAST_EXP: u32 = 41;

/// Total bucket count: 32 linear + 37 octaves × 32 sub-buckets = 1216.
pub const BUCKET_COUNT: usize = LINEAR + (LAST_EXP - FIRST_EXP + 1) as usize * SUB;

/// Smallest duration (µs) that saturates into the top bucket: 2^42 µs.
pub const SATURATION_MICROS: u64 = 1 << (LAST_EXP + 1);

/// Maps a microsecond value to its bucket index. Total over all `u64`
/// values; everything at or above [`SATURATION_MICROS`] lands in the top
/// bucket.
fn bucket_index(micros: u64) -> usize {
    if micros < LINEAR as u64 {
        return micros as usize;
    }
    let v = micros.min(SATURATION_MICROS - 1);
    let exp = 63 - v.leading_zeros();
    let sub = (v >> (exp - SUB_BUCKET_BITS)) as usize & (SUB - 1);
    LINEAR + (exp - FIRST_EXP) as usize * SUB + sub
}

/// Inclusive lower bound (µs) of a bucket — the canonical value a quantile
/// query reports for samples that landed in it.
fn bucket_lower_bound(index: usize) -> u64 {
    debug_assert!(index < BUCKET_COUNT);
    if index < LINEAR + SUB {
        // Linear region and the first octave both have 1 µs buckets whose
        // lower bound equals the index itself.
        return index as u64;
    }
    let octave = (index - LINEAR) / SUB;
    let sub = (index - LINEAR) % SUB;
    ((SUB + sub) as u64) << octave
}

/// A latency histogram over fixed log-linear bucket boundaries.
///
/// `record` durations, `merge` per-worker instances in any order, then read
/// quantiles with [`LatencyHistogram::percentile`] or export a
/// [`HistogramSummary`] for reports and gate metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: vec![0; BUCKET_COUNT], count: 0 }
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        self.record_micros(d.as_micros());
    }

    /// Records one raw microsecond value.
    pub fn record_micros(&mut self, micros: u64) {
        self.counts[bucket_index(micros)] += 1;
        self.count += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Samples that saturated into the top bucket (values ≥ 2^42 µs).
    pub fn saturated(&self) -> u64 {
        self.counts[BUCKET_COUNT - 1]
    }

    /// Adds every count of `other` into `self`. Element-wise `u64`
    /// addition: commutative and associative, so any merge order over a set
    /// of histograms produces bit-identical state.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
    }

    /// The `q`-quantile (`0.0..=1.0`) as the lower bound of the bucket
    /// holding the sample of rank `ceil(q · count)`.
    ///
    /// An empty histogram reports [`SimDuration::ZERO`] — quantiles are
    /// always defined, never `NaN`.
    pub fn percentile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return SimDuration::from_micros(bucket_lower_bound(idx));
            }
        }
        // Unreachable: the loop covers every recorded sample.
        SimDuration::from_micros(bucket_lower_bound(BUCKET_COUNT - 1))
    }

    /// Snapshot of the canonical report quantiles, in seconds.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            p50_s: self.percentile(0.50).as_secs_f64(),
            p90_s: self.percentile(0.90).as_secs_f64(),
            p99_s: self.percentile(0.99).as_secs_f64(),
            p999_s: self.percentile(0.999).as_secs_f64(),
        }
    }
}

impl FromIterator<SimDuration> for LatencyHistogram {
    fn from_iter<I: IntoIterator<Item = SimDuration>>(iter: I) -> Self {
        let mut hist = LatencyHistogram::new();
        for d in iter {
            hist.record(d);
        }
        hist
    }
}

/// The quantiles a suite report and the `hist.*` gate metrics carry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HistogramSummary {
    /// Samples behind the quantiles.
    pub count: u64,
    /// Median, in seconds.
    pub p50_s: f64,
    /// 90th percentile, in seconds.
    pub p90_s: f64,
    /// 99th percentile, in seconds.
    pub p99_s: f64,
    /// 99.9th percentile, in seconds.
    pub p999_s: f64,
}

impl HistogramSummary {
    /// A summary with no samples: all quantiles zero, never `NaN`.
    pub fn empty() -> Self {
        LatencyHistogram::new().summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_has_defined_quantiles() {
        let hist = LatencyHistogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.percentile(0.5), SimDuration::ZERO);
        assert_eq!(hist.percentile(0.999), SimDuration::ZERO);
        let summary = hist.summary();
        assert_eq!(summary.count, 0);
        for q in [summary.p50_s, summary.p90_s, summary.p99_s, summary.p999_s] {
            assert!(q.is_finite(), "empty-histogram quantiles must never be NaN");
            assert_eq!(q.to_bits(), 0.0f64.to_bits());
        }
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut hist = LatencyHistogram::new();
        hist.record(SimDuration::from_micros(17));
        assert_eq!(hist.count(), 1);
        // 17 µs sits in the linear region: the bucket is exact.
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(hist.percentile(q), SimDuration::from_micros(17));
        }
    }

    #[test]
    fn top_bucket_saturates_instead_of_overflowing() {
        let mut hist = LatencyHistogram::new();
        hist.record_micros(SATURATION_MICROS);
        hist.record_micros(u64::MAX);
        assert_eq!(hist.saturated(), 2);
        let top = bucket_lower_bound(BUCKET_COUNT - 1);
        assert_eq!(hist.percentile(0.5).as_micros(), top);
        assert!(top < SATURATION_MICROS);
    }

    #[test]
    fn bucket_grid_is_monotone_and_tight() {
        let mut prev = None;
        for idx in 0..BUCKET_COUNT {
            let lo = bucket_lower_bound(idx);
            if let Some(p) = prev {
                assert!(lo > p, "bucket {idx} lower bound must increase");
            }
            assert_eq!(bucket_index(lo), idx, "lower bound must map back to its bucket");
            prev = Some(lo);
        }
        assert_eq!(bucket_index(SATURATION_MICROS - 1), BUCKET_COUNT - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let mut hist = LatencyHistogram::new();
        for us in 1..=1000u64 {
            hist.record_micros(us * 1000); // 1ms..1s
        }
        let p50 = hist.percentile(0.5);
        let p99 = hist.percentile(0.99);
        assert!(p50 < p99);
        // Bucket lower bounds under-report by at most one sub-bucket width.
        let true_p50 = 500_000.0;
        let got = p50.as_micros() as f64;
        assert!(got <= true_p50 && got >= true_p50 * (1.0 - 1.0 / 32.0) - 1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn reported_quantile_never_exceeds_the_sample(v in 0u64..(1u64 << 43)) {
            let mut hist = LatencyHistogram::new();
            hist.record_micros(v);
            let lo = hist.percentile(1.0).as_micros();
            let capped = v.min(SATURATION_MICROS - 1);
            prop_assert!(lo <= capped);
            // Relative error is bounded by the sub-bucket width.
            prop_assert!((capped - lo) as f64 <= lo as f64 / 32.0 + 1.0);
        }

        #[test]
        fn merge_order_is_irrelevant_bit_for_bit(
            samples in proptest::collection::vec(0u64..(1u64 << 44), 0..200),
            workers in 1usize..8,
        ) {
            // Sequential accumulation into one histogram...
            let mut sequential = LatencyHistogram::new();
            for &s in &samples {
                sequential.record_micros(s);
            }
            // ...vs per-worker shards merged in forward and reverse order.
            let shards: Vec<LatencyHistogram> = (0..workers)
                .map(|w| {
                    let mut h = LatencyHistogram::new();
                    for (i, &s) in samples.iter().enumerate() {
                        if i % workers == w {
                            h.record_micros(s);
                        }
                    }
                    h
                })
                .collect();
            let mut forward = LatencyHistogram::new();
            for shard in &shards {
                forward.merge(shard);
            }
            let mut reverse = LatencyHistogram::new();
            for shard in shards.iter().rev() {
                reverse.merge(shard);
            }
            prop_assert_eq!(&forward, &sequential);
            prop_assert_eq!(&reverse, &sequential);
            let (a, b) = (forward.summary(), sequential.summary());
            prop_assert_eq!(a.count, b.count);
            prop_assert_eq!(a.p50_s.to_bits(), b.p50_s.to_bits());
            prop_assert_eq!(a.p999_s.to_bits(), b.p999_s.to_bits());
        }
    }
}
