//! Per-packet trace records.
//!
//! A [`PacketRecord`] is the synthetic equivalent of one captured frame in the
//! original testbed. It carries everything the paper's analyses need: a
//! timestamp, the two endpoints, the transport protocol, TCP flags, the
//! payload length, the direction relative to the test computer, the flow the
//! packet belongs to, and the traffic class of that flow.

use crate::flow::{FlowId, FlowKind};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A network endpoint: an IPv4-style address plus a TCP/UDP port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Endpoint {
    /// IPv4 address encoded as a host-order `u32` (e.g. `0xC0A80001` = 192.168.0.1).
    pub addr: u32,
    /// Transport port.
    pub port: u16,
}

impl Endpoint {
    /// Creates an endpoint from an address and port.
    pub const fn new(addr: u32, port: u16) -> Self {
        Endpoint { addr, port }
    }

    /// Creates an endpoint from dotted-quad octets.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8, port: u16) -> Self {
        Endpoint {
            addr: ((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32,
            port,
        }
    }

    /// The four dotted-quad octets of the address.
    pub const fn octets(&self) -> [u8; 4] {
        [(self.addr >> 24) as u8, (self.addr >> 16) as u8, (self.addr >> 8) as u8, self.addr as u8]
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}:{}", o[0], o[1], o[2], o[3], self.port)
    }
}

/// Transport protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransportProtocol {
    /// Transmission Control Protocol.
    Tcp,
    /// User Datagram Protocol (used by the simulated DNS substrate).
    Udp,
}

/// TCP control flags carried by a packet.
///
/// Only the flags the analyses care about are modelled; `PSH`/`URG` are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags {
    /// Synchronize sequence numbers (connection open).
    pub syn: bool,
    /// Acknowledgement field significant.
    pub ack: bool,
    /// No more data from sender (connection close).
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
}

impl TcpFlags {
    /// A pure SYN (first packet of the three-way handshake).
    pub const SYN: TcpFlags = TcpFlags { syn: true, ack: false, fin: false, rst: false };
    /// A SYN-ACK (second packet of the handshake).
    pub const SYN_ACK: TcpFlags = TcpFlags { syn: true, ack: true, fin: false, rst: false };
    /// A plain ACK.
    pub const ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: false, rst: false };
    /// A FIN-ACK (teardown).
    pub const FIN_ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: true, rst: false };
    /// No flags set (used for UDP records).
    pub const NONE: TcpFlags = TcpFlags { syn: false, ack: false, fin: false, rst: false };

    /// True for the client-initiated SYN that opens a connection (SYN without ACK).
    pub fn is_connection_open(&self) -> bool {
        self.syn && !self.ack
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.syn {
            parts.push("SYN");
        }
        if self.ack {
            parts.push("ACK");
        }
        if self.fin {
            parts.push("FIN");
        }
        if self.rst {
            parts.push("RST");
        }
        if parts.is_empty() {
            write!(f, "-")
        } else {
            write!(f, "{}", parts.join("|"))
        }
    }
}

/// Direction of a packet relative to the test computer (the sync client host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// From the test computer towards the cloud (uploads, requests).
    Upload,
    /// From the cloud towards the test computer (downloads, responses).
    Download,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Upload => Direction::Download,
            Direction::Download => Direction::Upload,
        }
    }
}

/// One synthetic captured packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Capture timestamp.
    pub timestamp: SimTime,
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
    /// Transport protocol.
    pub protocol: TransportProtocol,
    /// TCP flags ([`TcpFlags::NONE`] for UDP).
    pub flags: TcpFlags,
    /// Application payload bytes carried by this packet (excluding headers).
    pub payload_len: u32,
    /// Total header bytes (Ethernet + IP + TCP/UDP + TLS record framing).
    pub header_len: u32,
    /// Direction relative to the test computer.
    pub direction: Direction,
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Traffic class of the owning flow at capture time.
    pub kind: FlowKind,
}

impl PacketRecord {
    /// Total bytes on the wire for this packet (headers plus payload).
    pub fn wire_len(&self) -> u64 {
        self.header_len as u64 + self.payload_len as u64
    }

    /// True when the packet carries application payload.
    pub fn has_payload(&self) -> bool {
        self.payload_len > 0
    }

    /// True for the client SYN that opens a TCP connection.
    pub fn is_syn(&self) -> bool {
        self.protocol == TransportProtocol::Tcp && self.flags.is_connection_open()
    }
}

/// Typical header overhead for a TCP segment: Ethernet (14) + IP (20) + TCP (32
/// with options). TLS record framing is added separately by the TLS model.
pub const TCP_HEADER_BYTES: u32 = 66;

/// Typical header overhead for a UDP datagram: Ethernet (14) + IP (20) + UDP (8).
pub const UDP_HEADER_BYTES: u32 = 42;

/// Maximum TCP segment payload used by the simulator (standard Ethernet MSS).
pub const MSS: u32 = 1460;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet(flags: TcpFlags, payload: u32) -> PacketRecord {
        PacketRecord {
            timestamp: SimTime::from_millis(5),
            src: Endpoint::from_octets(192, 168, 1, 10, 50000),
            dst: Endpoint::from_octets(10, 0, 0, 1, 443),
            protocol: TransportProtocol::Tcp,
            flags,
            payload_len: payload,
            header_len: TCP_HEADER_BYTES,
            direction: Direction::Upload,
            flow: FlowId(7),
            kind: FlowKind::Storage,
        }
    }

    #[test]
    fn endpoint_octet_roundtrip_and_display() {
        let e = Endpoint::from_octets(192, 168, 1, 10, 443);
        assert_eq!(e.octets(), [192, 168, 1, 10]);
        assert_eq!(e.addr, 0xC0A8010A);
        assert_eq!(format!("{e}"), "192.168.1.10:443");
        assert_eq!(Endpoint::new(0xC0A8010A, 443), e);
    }

    #[test]
    fn tcp_flag_constants_behave_as_expected() {
        assert!(TcpFlags::SYN.is_connection_open());
        assert!(!TcpFlags::SYN_ACK.is_connection_open());
        assert!(!TcpFlags::ACK.is_connection_open());
        assert!(!TcpFlags::FIN_ACK.is_connection_open());
        assert_eq!(format!("{}", TcpFlags::SYN_ACK), "SYN|ACK");
        assert_eq!(format!("{}", TcpFlags::NONE), "-");
        assert_eq!(format!("{}", TcpFlags::FIN_ACK), "ACK|FIN");
    }

    #[test]
    fn direction_reverse_is_involutive() {
        assert_eq!(Direction::Upload.reverse(), Direction::Download);
        assert_eq!(Direction::Download.reverse(), Direction::Upload);
        assert_eq!(Direction::Upload.reverse().reverse(), Direction::Upload);
    }

    #[test]
    fn packet_wire_length_sums_headers_and_payload() {
        let p = sample_packet(TcpFlags::ACK, 1460);
        assert_eq!(p.wire_len(), 66 + 1460);
        assert!(p.has_payload());
        assert!(!p.is_syn());
    }

    #[test]
    fn syn_detection_requires_tcp_and_pure_syn() {
        let syn = sample_packet(TcpFlags::SYN, 0);
        assert!(syn.is_syn());
        let synack = sample_packet(TcpFlags::SYN_ACK, 0);
        assert!(!synack.is_syn());
        let mut udp = sample_packet(TcpFlags::SYN, 0);
        udp.protocol = TransportProtocol::Udp;
        assert!(!udp.is_syn());
    }

    #[test]
    fn packets_are_cloneable_and_comparable() {
        let p = sample_packet(TcpFlags::SYN, 0);
        let q = p.clone();
        assert_eq!(p, q);
        let mut r = p.clone();
        r.payload_len = 10;
        assert_ne!(p, r);
    }
}
