//! Small time-series helpers used when rendering the paper's figures.
//!
//! Figures 1 and 3 plot *cumulative* quantities (bytes, TCP SYNs) against
//! time. [`CumulativeSeries`] builds such step series from `(time, value)`
//! events and can resample them on a fixed grid so different services can be
//! plotted against a common x-axis.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize, Value};

/// A cumulative step series: at each event time the running total increases.
///
/// Stored as columnar struct-of-arrays buffers (a time column and a
/// running-total column) rather than a `Vec<(SimTime, f64)>` of tuples, so
/// figure rendering walks two dense, cache-friendly columns and resampling
/// binary-searches the bare time column without striding over totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CumulativeSeries {
    /// Event times, sorted ascending (duplicates allowed).
    times: Vec<SimTime>,
    /// Running total after the event at the same index.
    totals: Vec<f64>,
}

/// Serialized in the historical row-major shape `{"points": [[t, v], …]}` so
/// exported series stay stable across the columnar migration.
impl Serialize for CumulativeSeries {
    fn serialize(&self) -> Value {
        let points = self
            .times
            .iter()
            .zip(&self.totals)
            .map(|(t, v)| Value::Array(vec![t.serialize(), v.serialize()]))
            .collect();
        Value::Object(vec![(String::from("points"), Value::Array(points))])
    }
}

impl Deserialize for CumulativeSeries {}

impl CumulativeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        CumulativeSeries::default()
    }

    /// Builds a cumulative series from raw `(time, increment)` events.
    ///
    /// Events do not need to be sorted, but the common case — events drained
    /// from a heap-ordered run — already is, so the O(n log n) sort only runs
    /// when a linear sortedness scan says the input actually needs it.
    pub fn from_events<I: IntoIterator<Item = (SimTime, f64)>>(events: I) -> Self {
        let mut evs: Vec<(SimTime, f64)> = events.into_iter().collect();
        if !evs.is_sorted_by_key(|(t, _)| *t) {
            evs.sort_by_key(|(t, _)| *t);
        }
        let mut times = Vec::with_capacity(evs.len());
        let mut totals = Vec::with_capacity(evs.len());
        let mut total = 0.0;
        for (t, inc) in evs {
            total += inc;
            times.push(t);
            totals.push(total);
        }
        CumulativeSeries { times, totals }
    }

    /// Number of events in the series.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the series has no events.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The event-time column, sorted ascending.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// The running-total column, aligned with [`CumulativeSeries::times`].
    pub fn totals(&self) -> &[f64] {
        &self.totals
    }

    /// Iterates the `(time, running total)` points in time order.
    pub fn points(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.totals.iter().copied())
    }

    /// Final running total (0 for an empty series).
    pub fn total(&self) -> f64 {
        self.totals.last().copied().unwrap_or(0.0)
    }

    /// Value of the step function at time `t` (the running total of the last
    /// event at or before `t`; 0 before the first event).
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self.times.binary_search(&t) {
            Ok(mut idx) => {
                // Several events can share a timestamp; take the last one.
                while idx + 1 < self.times.len() && self.times[idx + 1] == t {
                    idx += 1;
                }
                self.totals[idx]
            }
            Err(0) => 0.0,
            Err(idx) => self.totals[idx - 1],
        }
    }

    /// Resamples the step function on a fixed grid `[0, horizon]` with the
    /// given step, producing `(time, value)` pairs suitable for plotting.
    pub fn resample(&self, horizon: SimDuration, step: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!step.is_zero(), "resampling step must be positive");
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + horizon;
        loop {
            out.push((t, self.value_at(t)));
            if t >= end {
                break;
            }
            t += step;
        }
        out
    }

    /// Time at which the running total first reaches `target`, if ever.
    pub fn time_to_reach(&self, target: f64) -> Option<SimTime> {
        self.totals.iter().position(|v| *v >= target).map(|idx| self.times[idx])
    }
}

/// The concurrency high-water mark of a set of half-open virtual-time
/// intervals `[start, end)`: the most intervals overlapping at any instant.
///
/// The temporal fleet scheduler uses this over per-sync
/// `[sync_started_at, completed_at)` intervals to report how far arrival
/// jitter and idle rounds spread a round's load compared to the lock-step
/// barrier (where the peak equals the fleet size). Zero-length and inverted
/// intervals contribute nothing; an empty set peaks at 0.
pub fn concurrency_peak(intervals: &[(SimTime, SimTime)]) -> usize {
    let mut events: Vec<(SimTime, i32)> = Vec::with_capacity(intervals.len() * 2);
    for &(start, end) in intervals {
        if end > start {
            events.push((start, 1));
            events.push((end, -1));
        }
    }
    // Ends sort before starts at the same instant: [a, t) and [t, b) never
    // overlap.
    events.sort_by_key(|&(t, delta)| (t, delta));
    let mut live = 0i64;
    let mut peak = 0i64;
    for (_, delta) in events {
        live += delta as i64;
        peak = peak.max(live);
    }
    peak as usize
}

/// Simple descriptive statistics over repeated measurements (the paper repeats
/// each experiment 24 times and reports averages).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl SampleStats {
    /// The all-zero statistics of an empty sample set — the conventional
    /// fallback where an absent distribution should render as zeroes rather
    /// than NaNs.
    pub const fn zero() -> SampleStats {
        SampleStats { count: 0, mean: 0.0, min: 0.0, max: 0.0, std_dev: 0.0 }
    }

    /// Computes statistics over a slice of samples. Returns `None` for an
    /// empty slice.
    pub fn from_samples(samples: &[f64]) -> Option<SampleStats> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / count as f64;
        Some(SampleStats { count, mean, min, max, std_dev: var.sqrt() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_series_accumulates_in_time_order() {
        let s = CumulativeSeries::from_events(vec![
            (SimTime::from_secs(3), 5.0),
            (SimTime::from_secs(1), 10.0),
            (SimTime::from_secs(2), 2.0),
        ]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.total(), 17.0);
        let points: Vec<(SimTime, f64)> = s.points().collect();
        assert_eq!(points[0], (SimTime::from_secs(1), 10.0));
        assert_eq!(points[2], (SimTime::from_secs(3), 17.0));
        // The columns stay aligned and the time column is sorted.
        assert_eq!(s.times().len(), s.totals().len());
        assert!(s.times().is_sorted());
    }

    #[test]
    fn presorted_events_skip_the_sort_and_match_the_sorted_path() {
        let unsorted = vec![
            (SimTime::from_secs(3), 5.0),
            (SimTime::from_secs(1), 10.0),
            (SimTime::from_secs(2), 2.0),
            (SimTime::from_secs(2), 4.0),
        ];
        let mut presorted = unsorted.clone();
        presorted.sort_by_key(|(t, _)| *t);
        let fast = CumulativeSeries::from_events(presorted.clone());
        let slow = CumulativeSeries::from_events(unsorted);
        assert_eq!(fast, slow, "sorted fast path must build the identical series");
        assert_eq!(fast.total(), 21.0);
        assert_eq!(fast.times(), slow.times());
        assert_eq!(fast.totals(), slow.totals());
        // A single-event and an empty input are trivially sorted.
        assert_eq!(CumulativeSeries::from_events(vec![(SimTime::from_secs(1), 1.0)]).total(), 1.0);
        assert!(CumulativeSeries::from_events(Vec::new()).is_empty());
    }

    #[test]
    fn value_at_is_a_right_continuous_step_function() {
        let s = CumulativeSeries::from_events(vec![
            (SimTime::from_secs(1), 10.0),
            (SimTime::from_secs(3), 5.0),
        ]);
        assert_eq!(s.value_at(SimTime::ZERO), 0.0);
        assert_eq!(s.value_at(SimTime::from_millis(999)), 0.0);
        assert_eq!(s.value_at(SimTime::from_secs(1)), 10.0);
        assert_eq!(s.value_at(SimTime::from_secs(2)), 10.0);
        assert_eq!(s.value_at(SimTime::from_secs(3)), 15.0);
        assert_eq!(s.value_at(SimTime::from_secs(100)), 15.0);
    }

    #[test]
    fn value_at_with_duplicate_timestamps_takes_the_last() {
        let s = CumulativeSeries::from_events(vec![
            (SimTime::from_secs(1), 1.0),
            (SimTime::from_secs(1), 2.0),
            (SimTime::from_secs(1), 3.0),
        ]);
        assert_eq!(s.value_at(SimTime::from_secs(1)), 6.0);
    }

    #[test]
    fn resample_produces_a_fixed_grid_including_both_ends() {
        let s = CumulativeSeries::from_events(vec![(SimTime::from_secs(5), 100.0)]);
        let grid = s.resample(SimDuration::from_secs(10), SimDuration::from_secs(5));
        assert_eq!(grid.len(), 3);
        assert_eq!(grid[0], (SimTime::ZERO, 0.0));
        assert_eq!(grid[1], (SimTime::from_secs(5), 100.0));
        assert_eq!(grid[2], (SimTime::from_secs(10), 100.0));
    }

    #[test]
    #[should_panic(expected = "resampling step must be positive")]
    fn resample_rejects_zero_step() {
        let s = CumulativeSeries::new();
        let _ = s.resample(SimDuration::from_secs(1), SimDuration::ZERO);
    }

    #[test]
    fn time_to_reach_finds_the_first_crossing() {
        let s = CumulativeSeries::from_events(vec![
            (SimTime::from_secs(1), 10.0),
            (SimTime::from_secs(2), 10.0),
            (SimTime::from_secs(3), 10.0),
        ]);
        assert_eq!(s.time_to_reach(5.0), Some(SimTime::from_secs(1)));
        assert_eq!(s.time_to_reach(15.0), Some(SimTime::from_secs(2)));
        assert_eq!(s.time_to_reach(30.0), Some(SimTime::from_secs(3)));
        assert_eq!(s.time_to_reach(31.0), None);
    }

    #[test]
    fn empty_series_edge_cases() {
        let s = CumulativeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.total(), 0.0);
        assert_eq!(s.value_at(SimTime::from_secs(10)), 0.0);
        assert_eq!(s.time_to_reach(1.0), None);
    }

    #[test]
    fn concurrency_peak_counts_maximal_overlap() {
        let s = SimTime::from_secs;
        // Three intervals, two of which overlap.
        assert_eq!(concurrency_peak(&[(s(0), s(10)), (s(5), s(15)), (s(20), s(30))]), 2);
        // Lock-step: identical intervals all overlap.
        assert_eq!(concurrency_peak(&[(s(0), s(5)); 4]), 4);
        // Touching endpoints do not overlap (half-open intervals).
        assert_eq!(concurrency_peak(&[(s(0), s(5)), (s(5), s(10))]), 1);
        // Degenerate inputs.
        assert_eq!(concurrency_peak(&[]), 0);
        assert_eq!(concurrency_peak(&[(s(3), s(3))]), 0, "zero-length intervals are empty");
        assert_eq!(concurrency_peak(&[(s(5), s(3))]), 0, "inverted intervals are ignored");
        // Nested intervals stack.
        assert_eq!(
            concurrency_peak(&[(s(0), s(100)), (s(10), s(20)), (s(12), s(18)), (s(50), s(60))]),
            3
        );
    }

    #[test]
    fn sample_stats_basic_properties() {
        let stats = SampleStats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(stats.count, 8);
        assert!((stats.mean - 5.0).abs() < 1e-12);
        assert_eq!(stats.min, 2.0);
        assert_eq!(stats.max, 9.0);
        assert!((stats.std_dev - 2.0).abs() < 1e-12);
        assert!(SampleStats::from_samples(&[]).is_none());
        let single = SampleStats::from_samples(&[3.5]).unwrap();
        assert_eq!(single.mean, 3.5);
        assert_eq!(single.std_dev, 0.0);
    }
}
