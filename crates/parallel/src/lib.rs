//! Order-preserving parallel map over scoped threads.
//!
//! The one threading primitive the workspace needs, shared by the storage
//! upload pipeline and the workload generator: run `work(ctx, i)` for
//! `i in 0..count` across worker threads and return results indexed by `i`,
//! bit-identically to a sequential loop. Workers pull indices from a shared
//! atomic counter and tag every result with its index; the tags are used to
//! reassemble deterministic output. No locks, no unsafe, no pool — workers
//! are `std::thread::scope` threads that live for one call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// The host's available parallelism (1 when it cannot be determined).
pub fn available_workers() -> usize {
    thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// The shared auto-sizing policy for [`run_indexed`] callers: stay
/// single-threaded when the batch is trivial (`work_items < 2`) or too small
/// to amortise the scoped-thread fan-out (`total_bytes < threshold_bytes` —
/// this also keeps already-parallel harnesses from oversubscribing the host
/// with nested spawns); otherwise use the host's available parallelism,
/// capped at one worker per item.
pub fn auto_workers(work_items: usize, total_bytes: u64, threshold_bytes: u64) -> usize {
    if work_items < 2 || total_bytes < threshold_bytes {
        1
    } else {
        available_workers().clamp(1, work_items)
    }
}

/// Runs `work(ctx, i)` for `i in 0..count` on up to `workers` threads and
/// returns the results in index order. `init` builds one context per worker
/// (e.g. a reusable scratch buffer); with `workers <= 1` the whole map runs
/// on the calling thread with a single context. Panics in `work` propagate.
pub fn run_indexed<C, T, I, F>(workers: usize, count: usize, init: I, work: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, count);
    if workers == 1 {
        let mut ctx = init();
        return (0..count).map(|i| work(&mut ctx, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut shards: Vec<Vec<(usize, T)>> = Vec::with_capacity(workers);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut ctx = init();
                let mut shard = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    shard.push((i, work(&mut ctx, i)));
                }
                shard
            }));
        }
        for handle in handles {
            shards.push(handle.join().expect("worker thread panicked"));
        }
    });

    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for (i, value) in shards.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "duplicate work item {i}");
        slots[i] = Some(value);
    }
    slots.into_iter().map(|slot| slot.expect("work item lost")).collect()
}

/// Like [`run_indexed`], but over caller-owned worker contexts that persist
/// across calls: runs `work(ctx, i)` for `i in 0..count` with exactly one
/// scoped thread per entry of `contexts` (capped at one per item), returning
/// results in index order. The fleet harness uses this to hand each round
/// worker a long-lived trace shard that keeps accumulating packets wave after
/// wave. With a single context the whole map runs inline on the calling
/// thread. Panics in `work` propagate; panics if `contexts` is empty.
pub fn run_with_contexts<C, T, F>(contexts: &mut [C], count: usize, work: F) -> Vec<T>
where
    C: Send,
    T: Send,
    F: Fn(&mut C, usize) -> T + Sync,
{
    assert!(!contexts.is_empty(), "at least one worker context is required");
    if count == 0 {
        return Vec::new();
    }
    if contexts.len() == 1 {
        let ctx = &mut contexts[0];
        return (0..count).map(|i| work(ctx, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let spawn = contexts.len().min(count);
    let work = &work;
    let next = &next;
    let mut shards: Vec<Vec<(usize, T)>> = Vec::with_capacity(spawn);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(spawn);
        for ctx in contexts.iter_mut().take(spawn) {
            handles.push(scope.spawn(move || {
                let mut shard = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    shard.push((i, work(ctx, i)));
                }
                shard
            }));
        }
        for handle in handles {
            shards.push(handle.join().expect("worker thread panicked"));
        }
    });

    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for (i, value) in shards.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "duplicate work item {i}");
        slots[i] = Some(value);
    }
    slots.into_iter().map(|slot| slot.expect("work item lost")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_under_contention() {
        let doubled = run_indexed(8, 1000, || (), |(), i| i * 2);
        assert_eq!(doubled.len(), 1000);
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn empty_and_single_item_work() {
        assert!(run_indexed(4, 0, || (), |(), i| i).is_empty());
        assert_eq!(run_indexed(4, 1, || (), |(), i| i + 7), vec![7]);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = run_indexed(
            1,
            257,
            || 0u64,
            |acc, i| {
                *acc += 1;
                i as u64 * 3
            },
        );
        let par = run_indexed(
            5,
            257,
            || 0u64,
            |acc, i| {
                *acc += 1;
                i as u64 * 3
            },
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn persistent_contexts_survive_across_calls() {
        let mut tallies = vec![0u64; 3];
        let a = run_with_contexts(&mut tallies, 100, |seen, i| {
            *seen += 1;
            i * 2
        });
        assert_eq!(a, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        let b = run_with_contexts(&mut tallies, 50, |seen, i| {
            *seen += 1;
            i
        });
        assert_eq!(b, (0..50).collect::<Vec<_>>());
        // Every item was tallied exactly once, accumulated across both calls.
        assert_eq!(tallies.iter().sum::<u64>(), 150);
    }

    #[test]
    fn single_context_runs_inline_and_empty_count_is_empty() {
        let mut ctxs = vec![0usize];
        assert!(run_with_contexts(&mut ctxs, 0, |c, i| {
            *c += 1;
            i
        })
        .is_empty());
        let out = run_with_contexts(&mut ctxs, 5, |c, i| {
            *c += 1;
            i + 1
        });
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(ctxs[0], 5);
    }

    #[test]
    #[should_panic(expected = "at least one worker context")]
    fn empty_contexts_panic() {
        let mut ctxs: Vec<()> = Vec::new();
        let _ = run_with_contexts(&mut ctxs, 3, |(), i| i);
    }

    #[test]
    fn contexts_are_per_worker() {
        // With one worker the context accumulates across all items.
        let counts = run_indexed(
            1,
            10,
            || 0usize,
            |seen, _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(counts, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }
}
