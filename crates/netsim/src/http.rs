//! HTTP message framing overhead.
//!
//! The services move files and metadata over HTTP(S). For the byte accounting
//! in Fig. 5/Fig. 6c the request and response *headers* matter (they are part
//! of the "total storage and control traffic"), so every application exchange
//! performed by the sync engine goes through [`HttpExchange`], which adds a
//! realistic header cost to the body supplied by the storage engine.

use crate::network::Network;
use crate::sim::Simulator;
use crate::tcp::TcpConnection;
use cloudsim_trace::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// HTTP header overhead model for one service's API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpOverhead {
    /// Bytes of request line + headers (incl. auth tokens and cookies).
    pub request_header_bytes: u32,
    /// Bytes of status line + response headers.
    pub response_header_bytes: u32,
}

impl HttpOverhead {
    /// Typical 2013 cloud-storage API headers: long OAuth tokens and cookies
    /// on requests, moderate response headers.
    pub const DEFAULT: HttpOverhead =
        HttpOverhead { request_header_bytes: 900, response_header_bytes: 350 };

    /// A chatty API with very large cookies (observed for the SkyDrive /
    /// Microsoft Live login sequence).
    pub const HEAVY: HttpOverhead =
        HttpOverhead { request_header_bytes: 1800, response_header_bytes: 700 };

    /// A lean API (e.g. a bare REST storage PUT).
    pub const LEAN: HttpOverhead =
        HttpOverhead { request_header_bytes: 400, response_header_bytes: 200 };
}

impl Default for HttpOverhead {
    fn default() -> Self {
        HttpOverhead::DEFAULT
    }
}

/// One HTTP request/response exchange over an existing connection.
#[derive(Debug, Clone, Copy)]
pub struct HttpExchange {
    /// Header overhead applied to the exchange.
    pub overhead: HttpOverhead,
    /// Request body bytes (e.g. the chunk or bundle being uploaded).
    pub request_body: u64,
    /// Response body bytes (e.g. metadata JSON).
    pub response_body: u64,
    /// Server processing time before the response starts.
    pub server_think: SimDuration,
}

impl HttpExchange {
    /// Creates an exchange with default header overhead.
    pub fn new(request_body: u64, response_body: u64, server_think: SimDuration) -> Self {
        HttpExchange { overhead: HttpOverhead::DEFAULT, request_body, response_body, server_think }
    }

    /// Overrides the header overhead.
    pub fn with_overhead(mut self, overhead: HttpOverhead) -> Self {
        self.overhead = overhead;
        self
    }

    /// Total bytes that travel client → server.
    pub fn upload_bytes(&self) -> u64 {
        self.request_body + self.overhead.request_header_bytes as u64
    }

    /// Total bytes that travel server → client.
    pub fn download_bytes(&self) -> u64 {
        self.response_body + self.overhead.response_header_bytes as u64
    }

    /// Executes the exchange on a connection, starting at `start` (or when the
    /// connection frees up). Returns the completion time.
    pub fn execute(
        &self,
        conn: &mut TcpConnection,
        sim: &mut Simulator,
        net: &Network,
        start: SimTime,
    ) -> SimTime {
        conn.request(sim, net, start, self.upload_bytes(), self.download_bytes(), self.server_think)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathSpec;
    use crate::tcp::ConnectionOptions;
    use cloudsim_trace::{FlowKind, FlowTable};

    #[test]
    fn exchange_byte_accounting_includes_headers() {
        let ex = HttpExchange::new(10_000, 500, SimDuration::from_millis(20));
        assert_eq!(ex.upload_bytes(), 10_900);
        assert_eq!(ex.download_bytes(), 850);
        let lean = ex.with_overhead(HttpOverhead::LEAN);
        assert_eq!(lean.upload_bytes(), 10_400);
        assert_eq!(lean.download_bytes(), 700);
        const {
            assert!(
                HttpOverhead::HEAVY.request_header_bytes
                    > HttpOverhead::DEFAULT.request_header_bytes
            )
        };
    }

    #[test]
    fn execute_moves_header_plus_body_bytes_over_the_wire() {
        let mut net = Network::new();
        let host = net.add_server("api.example", [10, 0, 0, 1], 443);
        net.set_path(
            host,
            PathSpec::symmetric(SimDuration::from_millis(30), 100_000_000).with_jitter(0.0),
        );
        let mut sim = Simulator::new(3);
        let mut conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::https(FlowKind::Control),
            SimTime::ZERO,
        );
        let ex = HttpExchange::new(50_000, 1_000, SimDuration::from_millis(10));
        let established = conn.established_at();
        let done = ex.execute(&mut conn, &mut sim, &net, established);
        assert!(done > established);

        let table = FlowTable::from_packets(&sim.packets());
        let stats = table.get(conn.flow()).unwrap();
        // Handshake payload (TLS) + request headers + body.
        assert!(stats.payload_up >= ex.upload_bytes());
        assert!(stats.payload_down >= ex.download_bytes());
    }
}
