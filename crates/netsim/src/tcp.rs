//! Flow-level TCP connection model with per-packet trace emission.
//!
//! The model captures the aspects of TCP that drive the paper's results:
//!
//! * connection establishment costs one RTT (plus two more for TLS), which is
//!   what penalises clients that open one connection per file (§4.2, Fig. 3);
//! * slow start makes short transfers latency-bound: a 100 kB upload to a
//!   160 ms-away server takes several round trips regardless of bandwidth
//!   (§5.2);
//! * once the congestion window covers the bandwidth-delay product the
//!   transfer becomes bandwidth-bound;
//! * the congestion window persists across requests on the same connection,
//!   so connection reuse (Dropbox's bundling) avoids repeatedly paying the
//!   slow-start ramp.
//!
//! Every data segment and acknowledgement is recorded in the experiment trace
//! with the timestamp at which the *test computer* would have captured it,
//! exactly like the tcpdump vantage point of the original testbed.

use crate::fault::FaultSchedule;
use crate::host::HostId;
use crate::network::Network;
use crate::path::PathSpec;
use crate::sim::Simulator;
use crate::tls::TlsProfile;
use cloudsim_trace::packet::{MSS, TCP_HEADER_BYTES};
use cloudsim_trace::{
    Direction, Endpoint, FlowId, FlowKind, PacketRecord, SimDuration, SimTime, TcpFlags,
    TransportProtocol,
};

/// Initial congestion window in segments (RFC 6928, already deployed in 2013).
pub const INITIAL_CWND_SEGMENTS: u32 = 10;

/// Upper bound on the congestion window in segments (corresponds to the
/// default 4 MB maximum socket buffers of the era).
pub const MAX_CWND_SEGMENTS: u32 = 2800;

/// Timing of one downstream-heavy exchange performed by
/// [`TcpConnection::fetch`]: when the request went out, when the first
/// response byte arrived (the restore suite's time-to-first-byte) and when
/// the download completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DownloadOutcome {
    /// When the request started (no earlier than the connection was free).
    pub requested_at: SimTime,
    /// When the first response payload byte reached the client.
    pub first_byte_at: SimTime,
    /// When the last response byte reached the client.
    pub completed_at: SimTime,
}

/// A transfer cut mid-flight by a link outage. The connection is dead after
/// this: the socket closed without a FIN exchange, so a session layer must
/// reopen (and pay the handshake again) before resuming from
/// [`TransferInterrupted::bytes_acked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferInterrupted {
    /// Payload bytes the application can rely on: acknowledged bytes for an
    /// upload, received bytes for a download. Everything past this offset
    /// must be re-driven.
    pub bytes_acked: u64,
    /// Payload bytes that actually travelled before the cut (wire cost).
    /// `bytes_sent - bytes_acked` is the wasted share of the attempt: bytes
    /// in flight when the link died.
    pub bytes_sent: u64,
    /// Virtual time from the operation's effective start to the cut.
    pub elapsed: SimDuration,
    /// The absolute instant the link went down under the transfer.
    pub interrupted_at: SimTime,
}

/// What one bounded data run (or whole transfer) achieved before a cutoff.
#[derive(Debug, Clone, Copy)]
struct RunOutcome {
    /// Send time of the last emitted data segment.
    last: SimTime,
    /// Data segments actually emitted.
    segments: u64,
    /// Payload bytes actually emitted (wire cost, wasted or not).
    sent_bytes: u64,
    /// Payload bytes the peer acknowledged before the cutoff (uploads) or
    /// the client received before the cutoff (downloads).
    acked_bytes: u64,
    /// True when the cutoff suppressed at least one segment of the run.
    truncated: bool,
}

/// Options for opening a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionOptions {
    /// Whether the connection carries TLS (HTTPS). Dropbox's notification
    /// protocol and some Wuala storage operations use plain HTTP (§3.1).
    pub tls: bool,
    /// Traffic class recorded for every packet of this connection.
    pub kind: FlowKind,
}

impl ConnectionOptions {
    /// HTTPS connection of the given traffic class.
    pub fn https(kind: FlowKind) -> Self {
        ConnectionOptions { tls: true, kind }
    }

    /// Plain HTTP connection of the given traffic class.
    pub fn http(kind: FlowKind) -> Self {
        ConnectionOptions { tls: false, kind }
    }
}

/// One TCP (optionally TLS) connection between the test computer and a server.
#[derive(Debug, Clone)]
pub struct TcpConnection {
    flow: FlowId,
    kind: FlowKind,
    tls: bool,
    tls_profile: TlsProfile,
    client: Endpoint,
    server: Endpoint,
    host: HostId,
    opened_at: SimTime,
    established_at: SimTime,
    /// Congestion window (in segments) carried over between requests.
    cwnd: u32,
    /// The earliest time the connection is free for the next operation.
    free_at: SimTime,
    closed: bool,
}

impl TcpConnection {
    /// Opens a connection to `host`, starting the three-way handshake at
    /// `start` (plus the TLS handshake when requested). Packets are recorded;
    /// the connection is usable from [`TcpConnection::established_at`].
    pub fn open(
        sim: &mut Simulator,
        net: &Network,
        host: HostId,
        opts: ConnectionOptions,
        start: SimTime,
    ) -> TcpConnection {
        let path = net.path(host);
        let server = net.host(host).unwrap_or_else(|| panic!("unknown host {host}")).endpoint;
        let flow = sim.trace_mut().allocate_flow();
        // Ephemeral port derived from the flow id keeps connections distinct
        // without requiring mutable access to the topology. Modulo the full
        // IANA ephemeral span so a fleet client opening thousands of
        // connections cycles through 49152..=65535 without ever exceeding
        // u16::MAX (49152 + span-1 == 65535 exactly).
        let span = (u16::MAX - crate::network::EPHEMERAL_PORT_MIN) as u64 + 1;
        let client_port = crate::network::EPHEMERAL_PORT_MIN + (flow.0 % span) as u16;
        let client = Endpoint::new(net.client().endpoint.addr, client_port);

        let mut conn = TcpConnection {
            flow,
            kind: opts.kind,
            tls: opts.tls,
            tls_profile: TlsProfile::default(),
            client,
            server,
            host,
            opened_at: start,
            established_at: start,
            cwnd: INITIAL_CWND_SEGMENTS,
            free_at: start,
            closed: false,
        };

        let rtt = path.sample_rtt(sim.rng());
        let one_way = rtt / 2;

        // TCP three-way handshake: SYN out, SYN-ACK back, ACK out.
        conn.emit(sim, start, Direction::Upload, TcpFlags::SYN, 0, 0);
        conn.emit(sim, start + rtt, Direction::Download, TcpFlags::SYN_ACK, 0, 0);
        conn.emit(sim, start + rtt, Direction::Upload, TcpFlags::ACK, 0, 0);
        let mut established = start + rtt;

        if opts.tls {
            // Full TLS handshake: client flight, server flight (certificates),
            // client Finished — two extra round trips.
            let tls = conn.tls_profile;
            conn.emit_stream(
                sim,
                established,
                Direction::Upload,
                tls.client_handshake_bytes as u64 / 2,
                path.effective_up_bandwidth(),
                0,
            );
            conn.emit_stream(
                sim,
                established + rtt,
                Direction::Download,
                tls.server_handshake_bytes as u64,
                path.effective_down_bandwidth(),
                0,
            );
            conn.emit_stream(
                sim,
                established + rtt,
                Direction::Upload,
                tls.client_handshake_bytes as u64 / 2,
                path.effective_up_bandwidth(),
                0,
            );
            established += rtt.saturating_mul(tls.handshake_rtts as u64);
        }

        conn.established_at = established;
        conn.free_at = established;
        sim.advance_to(established + one_way);
        conn
    }

    /// The flow id of this connection in the experiment trace.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// The server this connection terminates at.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Time at which the client sent the initial SYN.
    pub fn opened_at(&self) -> SimTime {
        self.opened_at
    }

    /// Time at which the transport (and TLS) handshake completed.
    pub fn established_at(&self) -> SimTime {
        self.established_at
    }

    /// The earliest time the connection is idle and can start a new operation.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Current congestion window in segments.
    pub fn congestion_window(&self) -> u32 {
        self.cwnd
    }

    /// Whether the connection has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Performs an application request/response exchange: uploads
    /// `upload_bytes` of payload, waits `server_think`, then downloads
    /// `download_bytes`. Returns the time the last response byte reaches the
    /// client. The exchange starts no earlier than `start` and no earlier than
    /// the connection is free.
    pub fn request(
        &mut self,
        sim: &mut Simulator,
        net: &Network,
        start: SimTime,
        upload_bytes: u64,
        download_bytes: u64,
        server_think: SimDuration,
    ) -> SimTime {
        assert!(!self.closed, "request on a closed connection");
        let path = net.path(self.host);
        let start = start.max(self.free_at);
        let rtt = path.sample_rtt(sim.rng());

        // Upload phase: last byte arrives at the server one-way after the last
        // segment leaves the client.
        let upload_done_at_server = if upload_bytes > 0 {
            let last_sent = self.transfer(sim, &path, start, upload_bytes, Direction::Upload, rtt);
            last_sent + rtt / 2
        } else {
            start + rtt / 2
        };

        let response_start = upload_done_at_server + server_think;

        // Download phase: timestamps are recorded at the client, so the first
        // response byte shows up one-way after the server starts sending.
        let completed = if download_bytes > 0 {
            let last_sent =
                self.transfer(sim, &path, response_start, download_bytes, Direction::Download, rtt);
            last_sent + rtt / 2
        } else {
            response_start + rtt / 2
        };

        self.free_at = completed;
        sim.advance_to(completed);
        completed
    }

    /// Performs a downstream-heavy exchange — the storage GET of the restore
    /// path: uploads `request_bytes` of request payload, waits
    /// `server_think`, then downloads `download_bytes` with the window bound
    /// by the *download*-direction bandwidth-delay product. On an asymmetric
    /// link this is what lets the server actually fill the fat downstream
    /// pipe (an ADSL client restores ~8× faster than it uploads); on
    /// symmetric paths it behaves exactly like [`TcpConnection::request`].
    /// Returns the request/first-byte/completion timing.
    pub fn fetch(
        &mut self,
        sim: &mut Simulator,
        net: &Network,
        start: SimTime,
        request_bytes: u64,
        download_bytes: u64,
        server_think: SimDuration,
    ) -> DownloadOutcome {
        assert!(!self.closed, "fetch on a closed connection");
        let path = net.path(self.host);
        let start = start.max(self.free_at);
        let rtt = path.sample_rtt(sim.rng());

        let request_done_at_server = if request_bytes > 0 {
            let last_sent = self.transfer_with_bdp(
                sim,
                &path,
                start,
                request_bytes,
                Direction::Upload,
                rtt,
                path.bdp_bytes_up(),
            );
            last_sent + rtt / 2
        } else {
            start + rtt / 2
        };

        let response_start = request_done_at_server + server_think;
        let first_byte_at = response_start + rtt / 2;
        let completed_at = if download_bytes > 0 {
            let last_sent = self.transfer_with_bdp(
                sim,
                &path,
                response_start,
                download_bytes,
                Direction::Download,
                rtt,
                path.bdp_bytes_down(),
            );
            last_sent + rtt / 2
        } else {
            first_byte_at
        };

        self.free_at = completed_at;
        sim.advance_to(completed_at);
        DownloadOutcome { requested_at: start, first_byte_at, completed_at }
    }

    /// Uploads `bytes` of payload and waits for the final acknowledgement.
    /// Returns the time the acknowledgement of the last byte reaches the
    /// client.
    pub fn send(
        &mut self,
        sim: &mut Simulator,
        net: &Network,
        start: SimTime,
        bytes: u64,
    ) -> SimTime {
        assert!(!self.closed, "send on a closed connection");
        let path = net.path(self.host);
        let start = start.max(self.free_at);
        let rtt = path.sample_rtt(sim.rng());
        let last_sent = if bytes > 0 {
            self.transfer(sim, &path, start, bytes, Direction::Upload, rtt)
        } else {
            start
        };
        let acked = last_sent + rtt;
        self.free_at = acked;
        sim.advance_to(acked);
        acked
    }

    /// [`TcpConnection::send`] under a link-outage schedule. When an outage
    /// window cuts the link mid-upload, the transfer stops at the cut, the
    /// connection dies (no FIN — the socket just goes dark) and a typed
    /// [`TransferInterrupted`] reports how many bytes the server had
    /// acknowledged. With no outage intersecting the operation this
    /// delegates to the plain path and is bit-identical to it.
    pub fn send_faulted(
        &mut self,
        sim: &mut Simulator,
        net: &Network,
        start: SimTime,
        bytes: u64,
        faults: &FaultSchedule,
    ) -> Result<SimTime, TransferInterrupted> {
        assert!(!self.closed, "send on a closed connection");
        let start = start.max(self.free_at);
        let Some(cut) = faults.first_cut_at_or_after(start) else {
            return Ok(self.send(sim, net, start, bytes));
        };
        if cut <= start {
            // The link is already down: the attempt fails on the spot at
            // zero wire cost (it still costs the retry budget upstream).
            return Err(self.interrupt(sim, start, start, 0, 0));
        }
        let path = net.path(self.host);
        let rtt = path.sample_rtt(sim.rng());
        if bytes == 0 {
            let acked = start + rtt;
            if acked > cut {
                return Err(self.interrupt(sim, start, cut, 0, 0));
            }
            self.free_at = acked;
            sim.advance_to(acked);
            return Ok(acked);
        }
        let out = self.transfer_bounded(
            sim,
            &path,
            start,
            bytes,
            Direction::Upload,
            rtt,
            path.bdp_bytes_up(),
            Some(cut),
        );
        if out.acked_bytes >= bytes {
            let acked = out.last + rtt;
            self.free_at = acked;
            sim.advance_to(acked);
            Ok(acked)
        } else {
            Err(self.interrupt(sim, start, cut, out.acked_bytes, out.sent_bytes))
        }
    }

    /// [`TcpConnection::fetch`] under a link-outage schedule. A cut during
    /// the request phase interrupts with zero bytes; a cut during the
    /// response phase interrupts with the response bytes received so far —
    /// the offset a ranged re-fetch resumes from. With no outage
    /// intersecting the operation this delegates to the plain path and is
    /// bit-identical to it.
    #[allow(clippy::too_many_arguments)]
    pub fn fetch_faulted(
        &mut self,
        sim: &mut Simulator,
        net: &Network,
        start: SimTime,
        request_bytes: u64,
        download_bytes: u64,
        server_think: SimDuration,
        faults: &FaultSchedule,
    ) -> Result<DownloadOutcome, TransferInterrupted> {
        assert!(!self.closed, "fetch on a closed connection");
        let start = start.max(self.free_at);
        let Some(cut) = faults.first_cut_at_or_after(start) else {
            return Ok(self.fetch(sim, net, start, request_bytes, download_bytes, server_think));
        };
        if cut <= start {
            return Err(self.interrupt(sim, start, start, 0, 0));
        }
        let path = net.path(self.host);
        let rtt = path.sample_rtt(sim.rng());

        let request_done_at_server = if request_bytes > 0 {
            let out = self.transfer_bounded(
                sim,
                &path,
                start,
                request_bytes,
                Direction::Upload,
                rtt,
                path.bdp_bytes_up(),
                Some(cut),
            );
            // The request must fully reach the server before the cut for
            // the response to ever start.
            if out.truncated || out.last + rtt / 2 > cut {
                return Err(self.interrupt(sim, start, cut, 0, out.sent_bytes));
            }
            out.last + rtt / 2
        } else {
            start + rtt / 2
        };

        let response_start = request_done_at_server + server_think;
        let first_byte_at = response_start + rtt / 2;
        let completed_at = if download_bytes > 0 {
            let out = self.transfer_bounded(
                sim,
                &path,
                response_start,
                download_bytes,
                Direction::Download,
                rtt,
                path.bdp_bytes_down(),
                Some(cut),
            );
            if out.acked_bytes < download_bytes {
                return Err(self.interrupt(
                    sim,
                    start,
                    cut,
                    out.acked_bytes,
                    request_bytes + out.sent_bytes,
                ));
            }
            out.last + rtt / 2
        } else {
            if first_byte_at > cut {
                return Err(self.interrupt(sim, start, cut, 0, request_bytes));
            }
            first_byte_at
        };

        self.free_at = completed_at;
        sim.advance_to(completed_at);
        Ok(DownloadOutcome { requested_at: start, first_byte_at, completed_at })
    }

    /// Kills the connection at the instant the link went down: no FIN
    /// exchange travels (nothing can), the socket is simply dead and any
    /// later operation must open a fresh connection.
    fn interrupt(
        &mut self,
        sim: &mut Simulator,
        started: SimTime,
        at: SimTime,
        bytes_acked: u64,
        bytes_sent: u64,
    ) -> TransferInterrupted {
        self.closed = true;
        self.free_at = at;
        sim.advance_to(at);
        TransferInterrupted {
            bytes_acked,
            bytes_sent,
            elapsed: at.saturating_since(started),
            interrupted_at: at,
        }
    }

    /// Closes the connection with a FIN exchange at `time` (or when the
    /// connection becomes free, whichever is later).
    pub fn close(&mut self, sim: &mut Simulator, net: &Network, time: SimTime) -> SimTime {
        if self.closed {
            return self.free_at;
        }
        let path = net.path(self.host);
        let rtt = path.sample_rtt(sim.rng());
        let t = time.max(self.free_at);
        self.emit(sim, t, Direction::Upload, TcpFlags::FIN_ACK, 0, 0);
        self.emit(sim, t + rtt, Direction::Download, TcpFlags::FIN_ACK, 0, 0);
        self.emit(sim, t + rtt, Direction::Upload, TcpFlags::ACK, 0, 0);
        self.closed = true;
        self.free_at = t + rtt;
        sim.advance_to(t + rtt);
        self.free_at
    }

    /// Transfers `bytes` of payload in one direction starting at `start`,
    /// recording every data segment and one acknowledgement per two segments.
    /// Returns the time the last data segment is *sent* by the transmitting
    /// side (client time base: upload segments are stamped when sent, download
    /// segments when received).
    fn transfer(
        &mut self,
        sim: &mut Simulator,
        path: &PathSpec,
        start: SimTime,
        bytes: u64,
        direction: Direction,
        rtt: SimDuration,
    ) -> SimTime {
        // Historical behaviour of `request`/`send`: the in-flight bound is
        // the upload-direction BDP regardless of transfer direction (a
        // conservative receive-window assumption). `fetch` passes the
        // download-direction BDP explicitly to serve downstream transfers.
        self.transfer_with_bdp(sim, path, start, bytes, direction, rtt, path.bdp_bytes_up())
    }

    /// [`TcpConnection::transfer`] with an explicit bandwidth-delay product
    /// bound (in bytes) for the congestion-window growth.
    #[allow(clippy::too_many_arguments)]
    fn transfer_with_bdp(
        &mut self,
        sim: &mut Simulator,
        path: &PathSpec,
        start: SimTime,
        bytes: u64,
        direction: Direction,
        rtt: SimDuration,
        bdp_bytes: u64,
    ) -> SimTime {
        self.transfer_bounded(sim, path, start, bytes, direction, rtt, bdp_bytes, None).last
    }

    /// The transfer engine behind every data phase: emits the congestion-
    /// window-shaped segment schedule, optionally stopping at `cutoff` (a
    /// link outage). With `cutoff == None` the emitted packets and returned
    /// times are identical to the historical unbounded transfer — the
    /// bit-identity contract the committed baselines rely on.
    #[allow(clippy::too_many_arguments)]
    fn transfer_bounded(
        &mut self,
        sim: &mut Simulator,
        path: &PathSpec,
        start: SimTime,
        bytes: u64,
        direction: Direction,
        rtt: SimDuration,
        bdp_bytes: u64,
        cutoff: Option<SimTime>,
    ) -> RunOutcome {
        debug_assert!(bytes > 0);
        let bandwidth = match direction {
            Direction::Upload => path.effective_up_bandwidth(),
            Direction::Download => path.effective_down_bandwidth(),
        };
        let seg_payload = MSS as u64;
        let total_segments = bytes.div_ceil(seg_payload);
        let seg_tx = SimDuration::for_transmission(seg_payload, bandwidth);
        let bdp_segments = bdp_bytes.max(1).div_ceil(seg_payload).max(1) as u32;

        let mut remaining = total_segments;
        let mut sent_bytes = 0u64;
        let mut acked_bytes = 0u64;
        let mut truncated = false;
        let mut cwnd = self.cwnd;
        let mut t = start;
        let mut last_sent = start;

        while remaining > 0 {
            let window = (cwnd as u64).min(remaining);
            let window_tx = seg_tx.saturating_mul(window);

            let run = if window_tx >= rtt || cwnd >= bdp_segments.min(MAX_CWND_SEGMENTS) {
                // The pipe is full: the rest of the transfer streams at line
                // rate, ack-clocked, with no idle gaps.
                let run = self.emit_data_run(
                    sim,
                    t,
                    direction,
                    remaining,
                    bytes - sent_bytes,
                    seg_tx,
                    rtt,
                    cutoff,
                );
                remaining -= run.segments.min(remaining);
                cwnd = cwnd.max(bdp_segments).min(MAX_CWND_SEGMENTS);
                run
            } else {
                // Slow-start round: `window` segments paced across the round
                // (ack-clocked senders spread their window over the RTT), then
                // the window grows for the next round. Pacing also prevents
                // slow-start rounds from looking like chunk-boundary pauses to
                // the throughput analyzer.
                let run_bytes = (window * seg_payload).min(bytes - sent_bytes);
                let spacing = seg_tx.max(rtt / (window + 1));
                let run =
                    self.emit_data_run(sim, t, direction, window, run_bytes, spacing, rtt, cutoff);
                remaining -= run.segments.min(remaining);
                cwnd = (cwnd * 2).min(MAX_CWND_SEGMENTS);
                t = t + rtt.max(spacing.saturating_mul(window)) + seg_tx;
                run
            };
            if run.segments > 0 {
                last_sent = run.last;
            }
            sent_bytes += run.sent_bytes;
            acked_bytes += run.acked_bytes;

            // Seeded per-segment drop mode: each emitted segment draws a
            // drop at the path's loss rate; drops come back one RTT later
            // as a timeout-style retransmission tail that costs wire bytes
            // and delays everything after it. Lossless paths (or the mode
            // switched off) never reach the RNG, so they replay the
            // historical schedule bit-identically.
            if path.segment_drops && path.loss > 0.0 && run.segments > 0 {
                let mut drops = 0u64;
                for _ in 0..run.segments {
                    if sim.rng().chance(path.loss) {
                        drops += 1;
                    }
                }
                if drops > 0 {
                    let retrans = self.emit_data_run(
                        sim,
                        run.last + rtt,
                        direction,
                        drops,
                        (drops * seg_payload).min(run.sent_bytes.max(1)),
                        seg_tx,
                        rtt,
                        cutoff,
                    );
                    // Retransmitted bytes are pure wire overhead: they do
                    // not advance sent/acked payload accounting, only time.
                    if retrans.segments > 0 {
                        last_sent = last_sent.max(retrans.last);
                        t = t.max(retrans.last + seg_tx);
                    }
                }
            }

            // The cutoff truncated this run: nothing further can be sent.
            if run.truncated {
                truncated = true;
                break;
            }
        }

        self.cwnd = cwnd;
        RunOutcome {
            last: last_sent,
            segments: total_segments - remaining,
            sent_bytes,
            acked_bytes,
            truncated,
        }
    }

    /// Emits up to `segments` data segments carrying `run_bytes` of payload
    /// starting at `start`, spaced `spacing` apart, plus one ACK per two
    /// segments in the opposite direction. Segments (and reverse ACKs) that
    /// would land after `cutoff` are suppressed: the link is down.
    #[allow(clippy::too_many_arguments)]
    fn emit_data_run(
        &mut self,
        sim: &mut Simulator,
        start: SimTime,
        direction: Direction,
        segments: u64,
        run_bytes: u64,
        spacing: SimDuration,
        rtt: SimDuration,
        cutoff: Option<SimTime>,
    ) -> RunOutcome {
        let seg_payload = MSS as u64;
        // Acked-byte accounting: an uploaded segment is safe once its ack
        // returned (one RTT after the send); a downloaded segment is safe
        // the instant the client captured it.
        let ack_lag = match direction {
            Direction::Upload => rtt,
            Direction::Download => SimDuration::ZERO,
        };
        let mut remaining = run_bytes;
        let mut last = start;
        let mut emitted = 0u64;
        let mut sent = 0u64;
        let mut acked = 0u64;
        let mut truncated = false;
        for i in 0..segments {
            let payload = remaining.min(seg_payload) as u32;
            if payload == 0 {
                break;
            }
            let ts = start + spacing.saturating_mul(i);
            if let Some(c) = cutoff {
                if ts > c {
                    truncated = true;
                    break;
                }
            }
            remaining -= payload as u64;
            self.emit(sim, ts, direction, TcpFlags::ACK, payload, self.data_overhead());
            last = ts;
            emitted += 1;
            sent += payload as u64;
            if cutoff.is_none_or(|c| ts + ack_lag <= c) {
                acked += payload as u64;
            }
            // Delayed acks: one pure ACK for every other data segment, flowing
            // in the reverse direction and captured at the client one RTT (for
            // uploads) or immediately (for downloads, the client is the acker)
            // after the data segment.
            if i % 2 == 1 {
                let ack_ts = match direction {
                    Direction::Upload => ts + rtt,
                    Direction::Download => ts,
                };
                if cutoff.is_none_or(|c| ack_ts <= c) {
                    self.emit(sim, ack_ts, direction.reverse(), TcpFlags::ACK, 0, 0);
                }
            }
        }
        RunOutcome { last, segments: emitted, sent_bytes: sent, acked_bytes: acked, truncated }
    }

    /// Emits a contiguous byte stream (used for handshake flights) as
    /// MSS-sized segments without congestion-window accounting.
    fn emit_stream(
        &mut self,
        sim: &mut Simulator,
        start: SimTime,
        direction: Direction,
        bytes: u64,
        bandwidth: u64,
        extra_overhead: u32,
    ) {
        if bytes == 0 {
            return;
        }
        let seg_payload = MSS as u64;
        let seg_tx = SimDuration::for_transmission(seg_payload, bandwidth);
        let segments = bytes.div_ceil(seg_payload);
        let mut remaining = bytes;
        for i in 0..segments {
            let payload = remaining.min(seg_payload) as u32;
            remaining -= payload as u64;
            self.emit(
                sim,
                start + seg_tx.saturating_mul(i),
                direction,
                TcpFlags::ACK,
                payload,
                extra_overhead,
            );
        }
    }

    /// Extra per-segment overhead charged on data segments (TLS records).
    fn data_overhead(&self) -> u32 {
        if self.tls {
            self.tls_profile.per_segment_overhead
        } else {
            0
        }
    }

    /// Records one packet with the connection's endpoints and flow metadata.
    fn emit(
        &self,
        sim: &mut Simulator,
        timestamp: SimTime,
        direction: Direction,
        flags: TcpFlags,
        payload_len: u32,
        extra_header: u32,
    ) {
        let (src, dst) = match direction {
            Direction::Upload => (self.client, self.server),
            Direction::Download => (self.server, self.client),
        };
        sim.trace_mut().record(PacketRecord {
            timestamp,
            src,
            dst,
            protocol: TransportProtocol::Tcp,
            flags,
            payload_len,
            header_len: TCP_HEADER_BYTES + extra_header,
            direction,
            flow: self.flow,
            kind: self.kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::OutageWindow;
    use cloudsim_trace::analysis::{self, BurstConfig, ThroughputConfig};
    use cloudsim_trace::FlowTable;

    fn test_net(rtt_ms: u64, bw: u64) -> (Network, HostId) {
        let mut net = Network::new();
        let host = net.add_server("server.example", [10, 0, 0, 1], 443);
        net.set_path(
            host,
            PathSpec::symmetric(SimDuration::from_millis(rtt_ms), bw).with_jitter(0.0),
        );
        (net, host)
    }

    #[test]
    fn handshake_without_tls_takes_one_rtt() {
        let (net, host) = test_net(100, 100_000_000);
        let mut sim = Simulator::new(1);
        let conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::http(FlowKind::Control),
            SimTime::ZERO,
        );
        assert_eq!(conn.established_at(), SimTime::from_millis(100));
        let packets = sim.packets();
        assert_eq!(analysis::syn_count(&packets), 1);
        assert_eq!(packets.len(), 3); // SYN, SYN-ACK, ACK
    }

    #[test]
    fn tls_handshake_adds_two_rtts_and_certificate_bytes() {
        let (net, host) = test_net(100, 100_000_000);
        let mut sim = Simulator::new(1);
        let conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::https(FlowKind::Control),
            SimTime::ZERO,
        );
        assert_eq!(conn.established_at(), SimTime::from_millis(300));
        let table = sim.trace().flow_table();
        let stats = table.get(conn.flow()).unwrap();
        // Certificate chain flows downstream during the handshake.
        assert!(stats.payload_down >= 4000, "got {}", stats.payload_down);
        assert!(stats.payload_up >= 600);
    }

    #[test]
    fn small_upload_on_long_path_is_latency_bound() {
        // 100 kB over a 160 ms path at 100 Mb/s: slow start needs several
        // rounds, so the transfer takes roughly 3-5 RTTs, far above the
        // 8 ms serialization time.
        let (net, host) = test_net(160, 100_000_000);
        let mut sim = Simulator::new(1);
        let mut conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::https(FlowKind::Storage),
            SimTime::ZERO,
        );
        let start = conn.established_at();
        let done = conn.request(&mut sim, &net, start, 100_000, 500, SimDuration::from_millis(10));
        let elapsed = done - start;
        assert!(
            elapsed >= SimDuration::from_millis(480) && elapsed <= SimDuration::from_millis(1500),
            "elapsed {elapsed}"
        );
    }

    #[test]
    fn large_upload_on_short_path_is_bandwidth_bound() {
        // 10 MB over a 10 ms path at 80 Mb/s: serialization alone is 1 s, so
        // completion should be close to (and above) that.
        let (net, host) = test_net(10, 80_000_000);
        let mut sim = Simulator::new(1);
        let mut conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::https(FlowKind::Storage),
            SimTime::ZERO,
        );
        let start = conn.established_at();
        let done = conn.request(&mut sim, &net, start, 10_000_000, 500, SimDuration::ZERO);
        let secs = (done - start).as_secs_f64();
        assert!(secs > 1.0 && secs < 2.0, "took {secs}s");
    }

    #[test]
    fn payload_accounting_matches_requested_bytes() {
        let (net, host) = test_net(50, 100_000_000);
        let mut sim = Simulator::new(1);
        let mut conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::http(FlowKind::Storage),
            SimTime::ZERO,
        );
        conn.request(&mut sim, &net, conn.established_at(), 123_456, 7_890, SimDuration::ZERO);
        let table = FlowTable::from_packets(&sim.packets());
        let stats = table.get(conn.flow()).unwrap();
        assert_eq!(stats.payload_up, 123_456);
        assert_eq!(stats.payload_down, 7_890);
    }

    #[test]
    fn connection_reuse_keeps_the_congestion_window() {
        let (net, host) = test_net(100, 100_000_000);
        let mut sim = Simulator::new(1);
        let mut conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::https(FlowKind::Storage),
            SimTime::ZERO,
        );
        let w0 = conn.congestion_window();
        let t1 =
            conn.request(&mut sim, &net, conn.established_at(), 500_000, 100, SimDuration::ZERO);
        let w1 = conn.congestion_window();
        assert!(w1 > w0, "window should have grown: {w0} -> {w1}");

        // The second transfer of the same size finishes faster thanks to the
        // warmed-up window.
        let first_duration = t1 - conn.established_at();
        let t2 = conn.request(&mut sim, &net, t1, 500_000, 100, SimDuration::ZERO);
        let second_duration = t2 - t1;
        assert!(
            second_duration < first_duration,
            "reuse should be faster: {second_duration} vs {first_duration}"
        );
    }

    #[test]
    fn separate_connections_per_file_generate_separate_syns() {
        // Google-Drive-style: one TCP+TLS connection per file.
        let (net, host) = test_net(15, 100_000_000);
        let mut sim = Simulator::new(1);
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            let mut conn = TcpConnection::open(
                &mut sim,
                &net,
                host,
                ConnectionOptions::https(FlowKind::Storage),
                t,
            );
            t = conn.request(
                &mut sim,
                &net,
                conn.established_at(),
                10_000,
                300,
                SimDuration::from_millis(5),
            );
            conn.close(&mut sim, &net, t);
        }
        let packets = sim.packets();
        assert_eq!(analysis::syn_count(&packets), 10);
        let table = FlowTable::from_packets(&packets);
        assert_eq!(table.len(), 10);
    }

    #[test]
    fn paced_transfer_has_no_spurious_pauses() {
        // A single 2 MB object on a high-RTT path must not show pauses that
        // could be mistaken for chunking (§4.1 detection must not false-positive).
        let (net, host) = test_net(160, 100_000_000);
        let mut sim = Simulator::new(1);
        let mut conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::https(FlowKind::Storage),
            SimTime::ZERO,
        );
        conn.request(&mut sim, &net, conn.established_at(), 2_000_000, 100, SimDuration::ZERO);
        let packets = sim.packets();
        let cfg =
            ThroughputConfig { min_pause: SimDuration::from_millis(40), ..Default::default() };
        let pauses = analysis::detect_pauses(&packets, cfg);
        // The only admissible gap is the one between the TLS handshake flights
        // and the first data round; no pause may be preceded by a significant
        // amount of payload (which is what the chunking detector keys on).
        assert!(
            pauses.iter().all(|p| p.bytes_before < 50_000),
            "unexpected data pauses: {pauses:?}"
        );
    }

    #[test]
    fn fetch_matches_request_on_symmetric_paths() {
        // On a symmetric path the up- and down-direction BDPs agree, so the
        // new download primitive is bit-identical to the historical request
        // path — the compatibility contract that keeps old baselines valid.
        let run = |fetch: bool| -> (SimTime, Vec<cloudsim_trace::PacketRecord>) {
            let (net, host) = test_net(80, 50_000_000);
            let mut sim = Simulator::new(3);
            let mut conn = TcpConnection::open(
                &mut sim,
                &net,
                host,
                ConnectionOptions::https(FlowKind::Storage),
                SimTime::ZERO,
            );
            let start = conn.established_at();
            let think = SimDuration::from_millis(10);
            let done = if fetch {
                conn.fetch(&mut sim, &net, start, 500, 3_000_000, think).completed_at
            } else {
                conn.request(&mut sim, &net, start, 500, 3_000_000, think)
            };
            (done, sim.packets())
        };
        let (req_done, req_packets) = run(false);
        let (fetch_done, fetch_packets) = run(true);
        assert_eq!(req_done, fetch_done);
        assert_eq!(req_packets, fetch_packets);
    }

    #[test]
    fn fetch_fills_the_asymmetric_downstream_pipe() {
        // ADSL-style split: 1 Mb/s up, 8 Mb/s down, 130 ms RTT. A 4 MB
        // download must approach the 8 Mb/s line rate (~4 s serialization),
        // nowhere near the 32 s the uplink would need.
        let mut net = Network::new();
        let host = net.add_server("server.example", [10, 0, 0, 1], 443);
        net.set_path(
            host,
            PathSpec::asymmetric(SimDuration::from_millis(130), 1_000_000, 8_000_000)
                .with_jitter(0.0),
        );
        let mut sim = Simulator::new(1);
        // Plain HTTP so the flow's payload accounting below is the fetch
        // alone (TLS would add certificate bytes to payload_down).
        let mut conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::http(FlowKind::Storage),
            SimTime::ZERO,
        );
        let start = conn.established_at();
        let outcome = conn.fetch(&mut sim, &net, start, 300, 4_000_000, SimDuration::ZERO);
        let secs = (outcome.completed_at - outcome.requested_at).as_secs_f64();
        assert!(secs > 4.0 && secs < 8.0, "4 MB over 8 Mb/s took {secs}s");
        // First byte arrives after the request round-trip, long before the
        // download completes.
        assert!(outcome.first_byte_at > outcome.requested_at);
        let ttfb = (outcome.first_byte_at - outcome.requested_at).as_secs_f64();
        assert!(ttfb < 1.0, "time to first byte {ttfb}s");
        assert!(outcome.completed_at > outcome.first_byte_at);

        // Payload accounting: the trace carries the downloaded bytes.
        let table = FlowTable::from_packets(&sim.packets());
        let stats = table.get(conn.flow()).unwrap();
        assert_eq!(stats.payload_down, 4_000_000);
        assert_eq!(stats.payload_up, 300);

        // The same volume *uploaded* on this link is bandwidth-starved.
        let up_done = conn.send(&mut sim, &net, outcome.completed_at, 4_000_000);
        let up_secs = (up_done - outcome.completed_at).as_secs_f64();
        assert!(up_secs > 4.0 * secs, "upload {up_secs}s vs download {secs}s");
    }

    #[test]
    fn zero_byte_fetch_costs_a_round_trip() {
        let (net, host) = test_net(100, 100_000_000);
        let mut sim = Simulator::new(1);
        let mut conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::https(FlowKind::Control),
            SimTime::ZERO,
        );
        let start = conn.established_at();
        let outcome = conn.fetch(&mut sim, &net, start, 0, 0, SimDuration::ZERO);
        assert_eq!(outcome.first_byte_at, outcome.completed_at);
        assert_eq!(outcome.completed_at, start + SimDuration::from_millis(100));
    }

    #[test]
    fn close_emits_fin_and_prevents_reuse() {
        let (net, host) = test_net(20, 100_000_000);
        let mut sim = Simulator::new(1);
        let mut conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::http(FlowKind::Control),
            SimTime::ZERO,
        );
        assert!(!conn.is_closed());
        let closed_at = conn.close(&mut sim, &net, conn.established_at());
        assert!(conn.is_closed());
        assert!(closed_at > conn.established_at());
        // Closing twice is a no-op.
        assert_eq!(conn.close(&mut sim, &net, closed_at), closed_at);
        let fins = sim.packets().iter().filter(|p| p.flags.fin).count();
        assert_eq!(fins, 2);
    }

    #[test]
    #[should_panic(expected = "request on a closed connection")]
    fn request_on_closed_connection_panics() {
        let (net, host) = test_net(20, 100_000_000);
        let mut sim = Simulator::new(1);
        let mut conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::http(FlowKind::Control),
            SimTime::ZERO,
        );
        conn.close(&mut sim, &net, conn.established_at());
        conn.request(&mut sim, &net, conn.free_at(), 10, 10, SimDuration::ZERO);
    }

    #[test]
    fn sequential_requests_queue_on_the_connection() {
        let (net, host) = test_net(50, 100_000_000);
        let mut sim = Simulator::new(1);
        let mut conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::https(FlowKind::Storage),
            SimTime::ZERO,
        );
        // Ask for the second request "in the past": it must still start only
        // after the first completes.
        let t1 =
            conn.request(&mut sim, &net, conn.established_at(), 50_000, 200, SimDuration::ZERO);
        let t2 = conn.request(&mut sim, &net, SimTime::ZERO, 50_000, 200, SimDuration::ZERO);
        assert!(t2 > t1);
    }

    #[test]
    fn faulted_ops_with_an_empty_schedule_are_bit_identical_to_plain_ones() {
        let run = |faulted: bool| -> (SimTime, SimTime, Vec<cloudsim_trace::PacketRecord>) {
            let (net, host) = test_net(80, 20_000_000);
            let mut sim = Simulator::new(11);
            let mut conn = TcpConnection::open(
                &mut sim,
                &net,
                host,
                ConnectionOptions::https(FlowKind::Storage),
                SimTime::ZERO,
            );
            let start = conn.established_at();
            let think = SimDuration::from_millis(5);
            let (sent, fetched) = if faulted {
                let s = conn
                    .send_faulted(&mut sim, &net, start, 700_000, &FaultSchedule::NONE)
                    .expect("no faults scheduled");
                let f = conn
                    .fetch_faulted(&mut sim, &net, s, 400, 900_000, think, &FaultSchedule::NONE)
                    .expect("no faults scheduled");
                (s, f.completed_at)
            } else {
                let s = conn.send(&mut sim, &net, start, 700_000);
                let f = conn.fetch(&mut sim, &net, s, 400, 900_000, think);
                (s, f.completed_at)
            };
            (sent, fetched, sim.packets())
        };
        let plain = run(false);
        let faulted = run(true);
        assert_eq!(plain.0, faulted.0);
        assert_eq!(plain.1, faulted.1);
        assert_eq!(plain.2, faulted.2);
    }

    #[test]
    fn schedules_entirely_before_the_op_also_delegate_to_the_plain_path() {
        // An outage that ended before the transfer starts must not perturb
        // anything: first_cut_at_or_after returns None and the plain path runs.
        let (net, host) = test_net(80, 20_000_000);
        let early = FaultSchedule {
            windows: vec![OutageWindow {
                down_at: SimTime::from_secs(1),
                up_at: SimTime::from_secs(2),
            }],
        };
        let mut sim = Simulator::new(11);
        let mut conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::https(FlowKind::Storage),
            SimTime::from_secs(10),
        );
        let start = conn.established_at();
        let done = conn.send_faulted(&mut sim, &net, start, 300_000, &early).unwrap();
        assert!(done > start);
        assert!(!conn.is_closed());
    }

    #[test]
    fn a_mid_transfer_outage_interrupts_deterministically_with_a_dead_socket() {
        let outage = |at_ms: u64| FaultSchedule {
            windows: vec![OutageWindow {
                down_at: SimTime::from_millis(at_ms),
                up_at: SimTime::from_millis(at_ms + 5_000),
            }],
        };
        let run = || {
            // 4 MB over 8 Mb/s is ~4 s of serialization; cutting at 1.2 s
            // lands mid-upload with part of the payload acknowledged.
            let (net, host) = test_net(60, 8_000_000);
            let mut sim = Simulator::new(5);
            let mut conn = TcpConnection::open(
                &mut sim,
                &net,
                host,
                ConnectionOptions::https(FlowKind::Storage),
                SimTime::ZERO,
            );
            let start = conn.established_at();
            let err = conn
                .send_faulted(&mut sim, &net, start, 4_000_000, &outage(1_200))
                .expect_err("the outage must cut the upload");
            (err, conn.is_closed(), sim.packets().len())
        };
        let (a, closed, packets_a) = run();
        let (b, _, packets_b) = run();
        assert_eq!(a, b, "interruption must be deterministic");
        assert_eq!(packets_a, packets_b);
        assert!(closed, "the socket dies without a FIN");
        assert!(a.bytes_acked > 0, "part of the upload was acknowledged");
        assert!(a.bytes_acked < 4_000_000, "the upload cannot have completed");
        assert_eq!(a.interrupted_at, SimTime::from_millis(1_200));
        assert!(a.elapsed > SimDuration::ZERO);
    }

    #[test]
    fn starting_inside_an_outage_fails_immediately_at_zero_wire_cost() {
        let (net, host) = test_net(60, 8_000_000);
        let mut sim = Simulator::new(5);
        let mut conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::https(FlowKind::Storage),
            SimTime::ZERO,
        );
        let start = conn.established_at();
        let down_now = FaultSchedule {
            windows: vec![OutageWindow {
                down_at: SimTime::ZERO,
                up_at: start + SimDuration::from_secs(30),
            }],
        };
        let before = sim.packets().len();
        let err = conn.send_faulted(&mut sim, &net, start, 1_000_000, &down_now).unwrap_err();
        assert_eq!(err.bytes_acked, 0);
        assert_eq!(err.elapsed, SimDuration::ZERO);
        assert_eq!(sim.packets().len(), before, "no packets travel on a down link");
        assert!(conn.is_closed());
    }

    #[test]
    fn a_download_outage_reports_received_bytes_for_ranged_resume() {
        let (net, host) = test_net(60, 8_000_000);
        let mut sim = Simulator::new(5);
        let mut conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::https(FlowKind::Storage),
            SimTime::ZERO,
        );
        let start = conn.established_at();
        let cut = FaultSchedule {
            windows: vec![OutageWindow {
                down_at: start + SimDuration::from_millis(1_500),
                up_at: start + SimDuration::from_secs(20),
            }],
        };
        let err = conn
            .fetch_faulted(&mut sim, &net, start, 300, 4_000_000, SimDuration::ZERO, &cut)
            .expect_err("the outage must cut the download");
        assert!(err.bytes_acked > 0, "some response bytes arrived before the cut");
        assert!(err.bytes_acked < 4_000_000);
        assert!(conn.is_closed());
    }

    #[test]
    fn segment_drop_mode_is_bit_identical_on_lossless_paths() {
        let run = |drops: bool| -> Vec<cloudsim_trace::PacketRecord> {
            let mut net = Network::new();
            let host = net.add_server("server.example", [10, 0, 0, 1], 443);
            net.set_path(
                host,
                PathSpec::symmetric(SimDuration::from_millis(60), 20_000_000)
                    .with_jitter(0.0)
                    .with_segment_drops(drops),
            );
            let mut sim = Simulator::new(7);
            let mut conn = TcpConnection::open(
                &mut sim,
                &net,
                host,
                ConnectionOptions::https(FlowKind::Storage),
                SimTime::ZERO,
            );
            conn.send(&mut sim, &net, conn.established_at(), 1_000_000);
            sim.packets()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn segment_drops_on_a_lossy_path_cost_wire_bytes_and_time() {
        let run = |drops: bool| -> (SimTime, u64) {
            let mut net = Network::new();
            let host = net.add_server("server.example", [10, 0, 0, 1], 443);
            net.set_path(
                host,
                PathSpec::symmetric(SimDuration::from_millis(60), 20_000_000)
                    .with_jitter(0.0)
                    .with_loss(0.02)
                    .with_segment_drops(drops),
            );
            let mut sim = Simulator::new(7);
            let mut conn = TcpConnection::open(
                &mut sim,
                &net,
                host,
                ConnectionOptions::http(FlowKind::Storage),
                SimTime::ZERO,
            );
            let done = conn.send(&mut sim, &net, conn.established_at(), 2_000_000);
            let wire: u64 = sim.packets().iter().map(|p| p.payload_len as u64).sum();
            (done, wire)
        };
        let (done_off, wire_off) = run(false);
        let (done_on, wire_on) = run(true);
        assert!(done_on > done_off, "retransmission tails delay completion");
        assert!(wire_on > wire_off, "retransmitted segments cost wire bytes");
        // Deterministic under a fixed seed.
        assert_eq!(run(true), run(true));
    }

    #[test]
    fn send_waits_for_final_ack_and_bursts_are_detected_per_send() {
        let (net, host) = test_net(100, 100_000_000);
        let mut sim = Simulator::new(1);
        let mut conn = TcpConnection::open(
            &mut sim,
            &net,
            host,
            ConnectionOptions::https(FlowKind::Storage),
            SimTime::ZERO,
        );
        let mut t = conn.established_at();
        for _ in 0..5 {
            t = conn.send(&mut sim, &net, t, 30_000);
            t += SimDuration::from_millis(300); // application-layer wait
        }
        let bursts = analysis::detect_bursts(&sim.packets(), BurstConfig::default());
        assert_eq!(bursts.len(), 5);
    }
}
