//! Seeded link-outage schedules for fault-injected transfers.
//!
//! The paper's measurements ran over real access links where transfers
//! stall and drop mid-flight; this module gives the simulator the same
//! failure surface without giving up reproducibility. A [`FaultSchedule`]
//! is *data*: a pure function of `(FaultSpec, seed)` — no wall clock, no
//! shared RNG state — exactly like the temporal fleet schedule. The TCP
//! layer consults it during a transfer and returns a typed
//! [`crate::tcp::TransferInterrupted`] when an outage window cuts the link
//! mid-flight, so two runs with the same spec and seed interrupt the same
//! byte of the same transfer at the same virtual instant regardless of
//! thread timing.

use cloudsim_trace::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Mixes a master seed and a coordinate pair into an independent 64-bit
/// draw — the same splitmix64 finalizer family as [`crate::rng::SimRng::derive`],
/// kept local so schedule generation needs no RNG object at all.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(a.wrapping_add(1)))
        .wrapping_add(0xD1B54A32D192ED03u64.wrapping_mul(b.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// How outages are drawn over one window of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The window of virtual time the outages are drawn in, measured from
    /// the schedule's anchor (a transfer window, a sync round, …).
    pub horizon: SimDuration,
    /// How many outages to draw inside the horizon (overlapping draws are
    /// merged, so the realised count can be lower).
    pub outages: usize,
    /// Shortest possible outage.
    pub min_outage: SimDuration,
    /// Longest possible outage.
    pub max_outage: SimDuration,
}

impl FaultSpec {
    /// Panics unless the spec is generable: a positive horizon and an
    /// ordered outage-duration range.
    pub fn validate(&self) {
        assert!(!self.horizon.is_zero(), "fault horizon must be positive");
        assert!(self.max_outage >= self.min_outage, "outage range needs min <= max");
    }
}

/// One contiguous interval during which the link is down. Packets cannot be
/// sent or received inside `[down_at, up_at)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// The instant the link goes down.
    pub down_at: SimTime,
    /// The instant the link comes back up.
    pub up_at: SimTime,
}

impl OutageWindow {
    /// True while the link is down.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.down_at && t < self.up_at
    }

    /// How long the outage lasts.
    pub fn duration(&self) -> SimDuration {
        self.up_at.saturating_since(self.down_at)
    }
}

/// A seeded schedule of link outages: sorted, non-overlapping windows of
/// virtual time. Generated once up front (pure data) and replayed by the
/// TCP layer; an empty schedule leaves every transfer bit-identical to the
/// fault-free simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultSchedule {
    /// Outage windows sorted by [`OutageWindow::down_at`], non-overlapping.
    pub windows: Vec<OutageWindow>,
}

impl FaultSchedule {
    /// A schedule with no outages: transfers run exactly as without faults.
    pub const NONE: FaultSchedule = FaultSchedule { windows: Vec::new() };

    /// Generates the schedule: a pure function of `(spec, seed)`. Each
    /// outage `i` draws its start uniformly in the horizon and its duration
    /// uniformly in `[min_outage, max_outage]` from independent seeded
    /// streams; overlapping draws merge into one longer window.
    pub fn generate(spec: &FaultSpec, seed: u64) -> FaultSchedule {
        spec.validate();
        let horizon = spec.horizon.as_micros();
        let span = spec.max_outage.as_micros() - spec.min_outage.as_micros();
        let mut windows: Vec<OutageWindow> = (0..spec.outages)
            .map(|i| {
                let down = mix(seed, i as u64, 0) % horizon;
                let dur = spec.min_outage.as_micros() + mix(seed, i as u64, 1) % (span + 1);
                OutageWindow {
                    down_at: SimTime::from_micros(down),
                    up_at: SimTime::from_micros(down + dur.max(1)),
                }
            })
            .collect();
        windows.sort_by_key(|w| (w.down_at, w.up_at));
        let mut merged: Vec<OutageWindow> = Vec::with_capacity(windows.len());
        for w in windows {
            match merged.last_mut() {
                Some(last) if w.down_at <= last.up_at => {
                    last.up_at = last.up_at.max(w.up_at);
                }
                _ => merged.push(w),
            }
        }
        FaultSchedule { windows: merged }
    }

    /// True when the schedule has no outages at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// True while the link is down at `t`.
    pub fn is_down(&self, t: SimTime) -> bool {
        self.windows.iter().any(|w| w.contains(t))
    }

    /// The first instant at or after `t` at which the link is (or goes)
    /// down, or `None` when no outage lies at or beyond `t`.
    pub fn first_cut_at_or_after(&self, t: SimTime) -> Option<SimTime> {
        self.windows.iter().find(|w| w.up_at > t).map(|w| w.down_at.max(t))
    }

    /// The first instant at or after `t` at which the link is up: `t`
    /// itself outside any outage, otherwise the end of the covering window.
    pub fn up_at_or_after(&self, t: SimTime) -> SimTime {
        self.windows.iter().find(|w| w.contains(t)).map_or(t, |w| w.up_at)
    }

    /// The schedule shifted `by` later in virtual time — how a relative
    /// schedule (windows drawn from an anchor of zero) is pinned onto an
    /// absolute transfer-window start.
    pub fn shifted(&self, by: SimDuration) -> FaultSchedule {
        FaultSchedule {
            windows: self
                .windows
                .iter()
                .map(|w| OutageWindow { down_at: w.down_at + by, up_at: w.up_at + by })
                .collect(),
        }
    }

    /// Total virtual time the link spends down.
    pub fn total_downtime(&self) -> SimDuration {
        self.windows.iter().fold(SimDuration::ZERO, |acc, w| acc + w.duration())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FaultSpec {
        FaultSpec {
            horizon: SimDuration::from_secs(120),
            outages: 3,
            min_outage: SimDuration::from_secs(2),
            max_outage: SimDuration::from_secs(10),
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_spec_and_seed() {
        let a = FaultSchedule::generate(&spec(), 7);
        let b = FaultSchedule::generate(&spec(), 7);
        assert_eq!(a, b);
        assert_ne!(a, FaultSchedule::generate(&spec(), 8));
        assert!(!a.is_empty());
        assert!(a.windows.len() <= 3);
    }

    #[test]
    fn windows_are_sorted_merged_and_inside_the_horizon() {
        for seed in 0..200u64 {
            let s = FaultSchedule::generate(&spec(), seed);
            for pair in s.windows.windows(2) {
                assert!(pair[0].up_at < pair[1].down_at, "seed {seed}: windows overlap or touch");
            }
            for w in &s.windows {
                assert!(w.up_at > w.down_at);
                assert!(w.down_at < SimTime::from_secs(120));
                assert!(w.duration() >= SimDuration::from_secs(2));
            }
        }
    }

    #[test]
    fn queries_agree_with_the_window_list() {
        let s = FaultSchedule::generate(&spec(), 42);
        let w = s.windows[0];
        assert!(s.is_down(w.down_at));
        assert!(!s.is_down(w.up_at));
        assert_eq!(s.first_cut_at_or_after(SimTime::ZERO), Some(w.down_at.max(SimTime::ZERO)));
        // Inside a window the cut is "now"; after every window there is none.
        assert_eq!(s.first_cut_at_or_after(w.down_at), Some(w.down_at));
        let last = *s.windows.last().unwrap();
        assert_eq!(s.first_cut_at_or_after(last.up_at + SimDuration::from_secs(1)), None);
        assert_eq!(s.up_at_or_after(w.down_at), w.up_at);
        assert_eq!(s.up_at_or_after(w.up_at), w.up_at);
    }

    #[test]
    fn shifting_moves_every_window_by_the_offset() {
        let s = FaultSchedule::generate(&spec(), 9);
        let by = SimDuration::from_secs(1000);
        let shifted = s.shifted(by);
        assert_eq!(shifted.windows.len(), s.windows.len());
        for (a, b) in s.windows.iter().zip(&shifted.windows) {
            assert_eq!(b.down_at, a.down_at + by);
            assert_eq!(b.duration(), a.duration());
        }
        assert_eq!(shifted.total_downtime(), s.total_downtime());
    }

    #[test]
    fn the_empty_schedule_never_cuts() {
        let s = FaultSchedule::NONE;
        assert!(s.is_empty());
        assert!(!s.is_down(SimTime::from_secs(5)));
        assert_eq!(s.first_cut_at_or_after(SimTime::ZERO), None);
        assert_eq!(s.up_at_or_after(SimTime::from_secs(5)), SimTime::from_secs(5));
        assert_eq!(s.total_downtime(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "fault horizon must be positive")]
    fn zero_horizon_is_rejected() {
        let bad = FaultSpec { horizon: SimDuration::ZERO, ..spec() };
        let _ = FaultSchedule::generate(&bad, 1);
    }
}
