//! TLS handshake and record-layer cost model.
//!
//! All five services studied in the paper carry storage and control traffic
//! over HTTPS (§3.1), so the cost of TLS handshakes matters a great deal when
//! a client opens one connection per file: "such design strongly limits the
//! system performance due to TCP and SSL negotiations" (§4.2). The model
//! charges two extra round trips plus the certificate-chain bytes for a full
//! handshake, and a small per-segment record overhead afterwards.

use serde::{Deserialize, Serialize};

/// Byte and round-trip costs of the TLS layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlsProfile {
    /// Number of additional round trips for a full handshake (TLS 1.0–1.2 as
    /// deployed in 2013: 2 round trips).
    pub handshake_rtts: u32,
    /// Bytes sent by the client during the handshake (ClientHello, key
    /// exchange, Finished).
    pub client_handshake_bytes: u32,
    /// Bytes sent by the server during the handshake (ServerHello, certificate
    /// chain, Finished).
    pub server_handshake_bytes: u32,
    /// Extra framing bytes charged to every data segment (record header, MAC
    /// and padding amortised per MSS-sized record).
    pub per_segment_overhead: u32,
}

impl TlsProfile {
    /// The profile used for 2013-era HTTPS (TLS 1.0/1.2, RSA certificates,
    /// ~3–4 kB certificate chains).
    pub const DEFAULT: TlsProfile = TlsProfile {
        handshake_rtts: 2,
        client_handshake_bytes: 700,
        server_handshake_bytes: 4200,
        per_segment_overhead: 29,
    };

    /// An abbreviated-handshake profile (session resumption): one round trip
    /// and no certificate chain. Some clients in the study resume sessions on
    /// reconnect; exposed for ablation benchmarks.
    pub const RESUMED: TlsProfile = TlsProfile {
        handshake_rtts: 1,
        client_handshake_bytes: 250,
        server_handshake_bytes: 250,
        per_segment_overhead: 29,
    };

    /// Total handshake bytes exchanged in both directions.
    pub fn handshake_bytes(&self) -> u32 {
        self.client_handshake_bytes + self.server_handshake_bytes
    }
}

impl Default for TlsProfile {
    fn default() -> Self {
        TlsProfile::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_a_full_handshake() {
        let p = TlsProfile::default();
        assert_eq!(p.handshake_rtts, 2);
        assert!(p.server_handshake_bytes > p.client_handshake_bytes);
        assert_eq!(p.handshake_bytes(), 4900);
    }

    #[test]
    fn resumed_profile_is_cheaper_in_every_dimension() {
        let full = TlsProfile::DEFAULT;
        let resumed = TlsProfile::RESUMED;
        assert!(resumed.handshake_rtts < full.handshake_rtts);
        assert!(resumed.handshake_bytes() < full.handshake_bytes());
        assert_eq!(resumed.per_segment_overhead, full.per_segment_overhead);
    }
}
