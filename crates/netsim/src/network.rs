//! Network topology: the test computer plus every server a service contacts.

use crate::host::{HostId, HostInfo, HostRole};
use crate::path::PathSpec;
use cloudsim_trace::Endpoint;
use std::collections::HashMap;

/// The topology of one experiment: a single client (the test computer) and a
/// set of servers, each reachable over its own [`PathSpec`].
#[derive(Debug, Clone)]
pub struct Network {
    client: HostInfo,
    hosts: Vec<HostInfo>,
    paths: HashMap<HostId, PathSpec>,
    default_path: PathSpec,
    next_client_port: u16,
    ports_allocated: u64,
}

/// First port of the IANA ephemeral range client connections draw from.
pub const EPHEMERAL_PORT_MIN: u16 = 49152;

impl Network {
    /// Creates a topology with the default test computer (192.168.1.10).
    pub fn new() -> Self {
        Network {
            client: HostInfo {
                id: HostId(0),
                dns_name: "test-computer.lan".to_string(),
                endpoint: Endpoint::from_octets(192, 168, 1, 10, 0),
                role: HostRole::Client,
            },
            hosts: Vec::new(),
            paths: HashMap::new(),
            default_path: PathSpec::default(),
            next_client_port: EPHEMERAL_PORT_MIN,
            ports_allocated: 0,
        }
    }

    /// Information about the test computer.
    pub fn client(&self) -> &HostInfo {
        &self.client
    }

    /// Registers a server with a given role.
    pub fn add_host(
        &mut self,
        dns_name: &str,
        octets: [u8; 4],
        port: u16,
        role: HostRole,
    ) -> HostId {
        let id = HostId(self.hosts.len() as u32 + 1);
        self.hosts.push(HostInfo {
            id,
            dns_name: dns_name.to_string(),
            endpoint: Endpoint::from_octets(octets[0], octets[1], octets[2], octets[3], port),
            role,
        });
        id
    }

    /// Registers a storage/control server (most common case in tests).
    pub fn add_server(&mut self, dns_name: &str, octets: [u8; 4], port: u16) -> HostId {
        self.add_host(dns_name, octets, port, HostRole::Storage)
    }

    /// Sets the path characteristics between the client and a server.
    pub fn set_path(&mut self, host: HostId, path: PathSpec) {
        self.paths.insert(host, path);
    }

    /// Sets the path used for servers without an explicit path.
    pub fn set_default_path(&mut self, path: PathSpec) {
        self.default_path = path;
    }

    /// Looks up the path to a server (falling back to the default path).
    pub fn path(&self, host: HostId) -> PathSpec {
        self.paths.get(&host).copied().unwrap_or(self.default_path)
    }

    /// Looks up a registered host.
    pub fn host(&self, id: HostId) -> Option<&HostInfo> {
        if id == self.client.id {
            return Some(&self.client);
        }
        self.hosts.get(id.0 as usize - 1)
    }

    /// Iterates over all registered servers.
    pub fn hosts(&self) -> impl Iterator<Item = &HostInfo> {
        self.hosts.iter()
    }

    /// Number of registered servers (excluding the client).
    pub fn server_count(&self) -> usize {
        self.hosts.len()
    }

    /// Allocates an ephemeral client port for a new connection. The counter
    /// wraps back to [`EPHEMERAL_PORT_MIN`] past 65535 via `checked_add`
    /// (never a `u16` overflow), so a fleet client that opens thousands of
    /// connections — e.g. Cloud Drive's four connections per file across
    /// many batches — cycles through the ephemeral range like a real TCP
    /// stack instead of panicking in debug builds.
    pub fn allocate_client_port(&mut self) -> u16 {
        let port = self.next_client_port;
        self.next_client_port = self.next_client_port.checked_add(1).unwrap_or(EPHEMERAL_PORT_MIN);
        self.ports_allocated += 1;
        port
    }

    /// Total ports handed out over the network's lifetime (diagnostic: a
    /// value beyond the 16384-port ephemeral range means port reuse, which
    /// is fine for the simulator's flow accounting — packets are attributed
    /// to connections, not reverse-mapped from port numbers).
    pub fn ports_allocated(&self) -> u64 {
        self.ports_allocated
    }

    /// Finds the servers with a given role.
    pub fn hosts_with_role(&self, role: HostRole) -> Vec<&HostInfo> {
        self.hosts.iter().filter(|h| h.role == role).collect()
    }
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsim_trace::SimDuration;

    #[test]
    fn hosts_are_registered_and_looked_up() {
        let mut net = Network::new();
        let a = net.add_host("control.example", [10, 0, 0, 1], 443, HostRole::Control);
        let b = net.add_server("storage.example", [10, 0, 0, 2], 443);
        assert_ne!(a, b);
        assert_eq!(net.server_count(), 2);
        assert_eq!(net.host(a).unwrap().dns_name, "control.example");
        assert_eq!(net.host(b).unwrap().role, HostRole::Storage);
        assert_eq!(net.host(HostId(0)).unwrap().role, HostRole::Client);
        assert!(net.host(HostId(99)).is_none());
        assert_eq!(net.hosts_with_role(HostRole::Control).len(), 1);
        assert_eq!(net.hosts().count(), 2);
    }

    #[test]
    fn paths_fall_back_to_default() {
        let mut net = Network::new();
        let a = net.add_server("a.example", [10, 0, 0, 1], 443);
        let b = net.add_server("b.example", [10, 0, 0, 2], 443);
        let fast = PathSpec::symmetric(SimDuration::from_millis(5), 1_000_000_000);
        net.set_path(a, fast);
        assert_eq!(net.path(a).rtt, SimDuration::from_millis(5));
        assert_eq!(net.path(b).rtt, PathSpec::default().rtt);
        let slow = PathSpec::symmetric(SimDuration::from_millis(200), 10_000_000);
        net.set_default_path(slow);
        assert_eq!(net.path(b).rtt, SimDuration::from_millis(200));
    }

    #[test]
    fn client_ports_are_unique_and_wrap() {
        let mut net = Network::new();
        let p1 = net.allocate_client_port();
        let p2 = net.allocate_client_port();
        assert_ne!(p1, p2);
        assert!(p1 >= EPHEMERAL_PORT_MIN);
        net.next_client_port = u16::MAX;
        assert_eq!(net.allocate_client_port(), u16::MAX);
        assert_eq!(net.allocate_client_port(), EPHEMERAL_PORT_MIN);
    }

    #[test]
    fn fleet_scale_port_allocation_cycles_the_ephemeral_range() {
        // A fleet client can open thousands of connections (Cloud Drive opens
        // four per file); exhaust the 16384-port ephemeral range six times
        // over and check the allocator never overflows or leaves the range.
        let mut net = Network::new();
        let span = (u16::MAX - EPHEMERAL_PORT_MIN) as u64 + 1;
        for i in 0..(6 * span) {
            let port = net.allocate_client_port();
            assert!(port >= EPHEMERAL_PORT_MIN, "allocation {i} left the range: {port}");
        }
        assert_eq!(net.ports_allocated(), 6 * span);
        // After exactly one full cycle the allocator is back at the start.
        assert_eq!(net.allocate_client_port(), EPHEMERAL_PORT_MIN);
    }

    #[test]
    fn client_endpoint_is_private_address() {
        let net = Network::new();
        assert_eq!(net.client().endpoint.octets(), [192, 168, 1, 10]);
        assert_eq!(net.client().role, HostRole::Client);
    }
}
