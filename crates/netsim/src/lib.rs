//! # cloudsim-net
//!
//! A deterministic, flow-level network simulator substituting for the real
//! testbed of the IMC'13 study ("Benchmarking Personal Cloud Storage").
//!
//! The original measurements ran native clients on a Windows VM connected to a
//! 1 Gb/s campus network and captured real packets. This crate replaces that
//! substrate with a virtual-time model that preserves everything the paper's
//! metrics depend on:
//!
//! * per-path round-trip time and bottleneck bandwidth ([`path`], [`network`]),
//! * TCP connection establishment, slow start and congestion avoidance,
//!   application-layer request/response exchanges and connection reuse
//!   ([`tcp`]),
//! * TLS handshake cost (extra round trips plus certificate bytes) and record
//!   overhead ([`tls`]),
//! * HTTP message framing overhead ([`http`]),
//! * UDP datagram exchanges for the DNS substrate ([`udp`]),
//! * per-packet trace emission into a [`cloudsim_trace::TraceShard`], so the
//!   same analyzers the paper applies to pcap files run on simulated traffic.
//!
//! The simulator is *analytic*: client logic calls operations such as
//! [`tcp::TcpConnection::request`] which compute their own completion time and
//! emit timestamped packet records, instead of being scheduled by a global
//! event loop. This keeps experiments deterministic, fast (an entire
//! 24-repetition benchmark suite runs in well under a second) and trivially
//! reproducible — the property the original authors wanted from their public
//! benchmarking tool.
//!
//! ```
//! use cloudsim_net::{Network, PathSpec, Simulator};
//! use cloudsim_net::tcp::{TcpConnection, ConnectionOptions};
//! use cloudsim_trace::{FlowKind, SimDuration, SimTime};
//!
//! // A client 15 ms away from a Google-Drive-like edge node, 100 Mb/s up.
//! let mut net = Network::new();
//! let server = net.add_server("edge.gdrive.example", [10, 0, 0, 1], 443);
//! net.set_path(server, PathSpec::symmetric(SimDuration::from_millis(15), 100_000_000));
//!
//! let mut sim = Simulator::new(42);
//! let opts = ConnectionOptions { tls: true, kind: FlowKind::Storage };
//! let mut conn = TcpConnection::open(&mut sim, &net, server, opts, SimTime::ZERO);
//! let done = conn.request(&mut sim, &net, conn.established_at(), 1_000_000, 500,
//!                         SimDuration::from_millis(20));
//! assert!(done.as_secs_f64() < 2.0);
//! assert!(sim.trace().len() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod host;
pub mod http;
pub mod link;
pub mod network;
pub mod path;
pub mod rng;
pub mod sim;
pub mod tcp;
pub mod tls;
pub mod udp;

pub use fault::{FaultSchedule, FaultSpec, OutageWindow};
pub use host::{HostId, HostInfo, HostRole};
pub use link::AccessLink;
pub use network::{Network, EPHEMERAL_PORT_MIN};
pub use path::PathSpec;
pub use rng::SimRng;
pub use sim::Simulator;
pub use tcp::TransferInterrupted;

// Re-export the time base so downstream crates need only one import path.
pub use cloudsim_trace::{SimDuration, SimTime};
