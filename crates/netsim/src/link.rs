//! Named access-link presets for heterogeneous client fleets.
//!
//! The paper measures every service from one campus vantage point (1 Gb/s
//! Ethernet) and notes that the access link and the client's distance to the
//! data centre dominate user-perceived performance (§5.2). A fleet of
//! simulated users therefore needs *per-client* access links: this module
//! provides the small library of named presets the heterogeneous scenarios
//! draw from — the paper's campus testbed plus the residential ADSL, FTTH
//! and mobile profiles of the era.
//!
//! An [`AccessLink`] composes onto any server [`PathSpec`]: bandwidths take
//! the bottleneck minimum, the access RTT adds to the path RTT, and loss
//! rates combine as independent events. Composition is pure, so the same
//! deployment recipe yields deterministic, per-client-distinct topologies.

use crate::path::PathSpec;
use cloudsim_trace::SimDuration;
use serde::{Deserialize, Serialize};

/// One access-link profile between a client and its ISP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessLink {
    /// Human-readable preset name (stable: used in reports and metrics keys).
    pub name: &'static str,
    /// Upstream bandwidth in bits per second.
    pub up_bandwidth: u64,
    /// Downstream bandwidth in bits per second.
    pub down_bandwidth: u64,
    /// Extra round-trip time the access link adds to every path.
    pub access_rtt: SimDuration,
    /// Steady-state segment loss rate on the access link.
    pub loss: f64,
}

impl AccessLink {
    /// A symmetric link: the same bandwidth in both directions. The
    /// constructor every symmetric preset (and any custom symmetric
    /// scenario) goes through, so call sites never have to spell the same
    /// figure twice.
    pub const fn symmetric(
        name: &'static str,
        bandwidth: u64,
        access_rtt: SimDuration,
        loss: f64,
    ) -> AccessLink {
        AccessLink { name, up_bandwidth: bandwidth, down_bandwidth: bandwidth, access_rtt, loss }
    }

    /// An asymmetric link with an explicit up/down split (residential and
    /// mobile profiles). The restore suite is where the `down` side finally
    /// earns its keep.
    pub const fn asymmetric(
        name: &'static str,
        up_bandwidth: u64,
        down_bandwidth: u64,
        access_rtt: SimDuration,
        loss: f64,
    ) -> AccessLink {
        AccessLink { name, up_bandwidth, down_bandwidth, access_rtt, loss }
    }

    /// The paper's testbed: campus Fast Ethernet behind a 1 Gb/s uplink.
    /// Composing it is the identity for every realistic server path.
    pub const fn campus() -> AccessLink {
        AccessLink::symmetric("campus", 1_000_000_000, SimDuration::ZERO, 0.0)
    }

    /// Fibre to the home: fast, symmetric, a couple of milliseconds away.
    pub const fn fiber() -> AccessLink {
        AccessLink::symmetric("fiber", 100_000_000, SimDuration::from_millis(2), 0.0)
    }

    /// Residential ADSL2+: the 1 Mb/s up / 8 Mb/s down split typical of the
    /// paper's era, with interleaving latency.
    pub const fn adsl() -> AccessLink {
        AccessLink::asymmetric("adsl", 1_000_000, 8_000_000, SimDuration::from_millis(30), 0.0)
    }

    /// 3G/HSPA mobile: asymmetric, high-latency and lossy — the profile the
    /// Mathis throughput ceiling actually bites on.
    pub const fn mobile3g() -> AccessLink {
        AccessLink::asymmetric("3g", 1_500_000, 4_000_000, SimDuration::from_millis(90), 0.005)
    }

    /// Every preset, in a stable order.
    pub fn all() -> [AccessLink; 4] {
        [AccessLink::campus(), AccessLink::fiber(), AccessLink::adsl(), AccessLink::mobile3g()]
    }

    /// Looks a preset up by its stable name.
    pub fn by_name(name: &str) -> Option<AccessLink> {
        AccessLink::all().into_iter().find(|l| l.name == name)
    }

    /// Composes this access link onto a server path: bottleneck-minimum
    /// bandwidths, summed RTTs, independently combined loss, and the
    /// server path's jitter setting.
    pub fn apply(&self, path: PathSpec) -> PathSpec {
        PathSpec {
            rtt: path.rtt + self.access_rtt,
            up_bandwidth: path.up_bandwidth.min(self.up_bandwidth),
            down_bandwidth: path.down_bandwidth.min(self.down_bandwidth),
            rtt_jitter: path.rtt_jitter,
            loss: 1.0 - (1.0 - path.loss) * (1.0 - self.loss),
            bufferbloat: path.bufferbloat,
            segment_drops: path.segment_drops,
        }
    }
}

impl Default for AccessLink {
    fn default() -> Self {
        AccessLink::campus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campus_composition_is_the_identity_on_realistic_paths() {
        let path = PathSpec::symmetric(SimDuration::from_millis(100), 100_000_000);
        assert_eq!(AccessLink::campus().apply(path), path);
    }

    #[test]
    fn adsl_caps_upstream_and_adds_latency() {
        let server = PathSpec::symmetric(SimDuration::from_millis(100), 100_000_000);
        let path = AccessLink::adsl().apply(server);
        assert_eq!(path.up_bandwidth, 1_000_000);
        assert_eq!(path.down_bandwidth, 8_000_000);
        assert_eq!(path.rtt, SimDuration::from_millis(130));
        assert_eq!(path.loss, 0.0);
    }

    #[test]
    fn mobile_loss_combines_with_path_loss() {
        let server = PathSpec::symmetric(SimDuration::from_millis(50), 50_000_000).with_loss(0.001);
        let path = AccessLink::mobile3g().apply(server);
        assert!((path.loss - (1.0 - 0.999 * 0.995)).abs() < 1e-12);
        // The composed path is slower than either constraint alone suggests:
        // loss caps it below the 1.5 Mb/s radio bearer.
        assert!(path.effective_up_bandwidth() < 1_500_000);
    }

    #[test]
    fn constructors_pin_the_preset_values() {
        // The presets route through symmetric()/asymmetric(); their values
        // are baseline-bearing (hetero.* metrics) and must not drift.
        let campus = AccessLink::campus();
        assert_eq!(campus.up_bandwidth, 1_000_000_000);
        assert_eq!(campus.up_bandwidth, campus.down_bandwidth);
        let fiber = AccessLink::fiber();
        assert_eq!(fiber.up_bandwidth, fiber.down_bandwidth);
        let adsl = AccessLink::adsl();
        assert_eq!((adsl.up_bandwidth, adsl.down_bandwidth), (1_000_000, 8_000_000));
        let mobile = AccessLink::mobile3g();
        assert_eq!((mobile.up_bandwidth, mobile.down_bandwidth), (1_500_000, 4_000_000));
        // Custom links compose like presets.
        let custom = AccessLink::symmetric("lab", 10_000_000, SimDuration::from_millis(1), 0.0);
        assert_eq!(custom.up_bandwidth, custom.down_bandwidth);
        let split = AccessLink::asymmetric("vdsl", 5_000_000, 50_000_000, SimDuration::ZERO, 0.0);
        assert_eq!(split.down_bandwidth / split.up_bandwidth, 10);
    }

    #[test]
    fn presets_resolve_by_stable_name() {
        for preset in AccessLink::all() {
            assert_eq!(AccessLink::by_name(preset.name), Some(preset));
        }
        assert_eq!(AccessLink::by_name("dialup"), None);
        assert_eq!(AccessLink::default(), AccessLink::campus());
    }
}
