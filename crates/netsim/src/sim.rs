//! The simulator: virtual clock, RNG and trace capture for one experiment run.

use crate::rng::SimRng;
use cloudsim_trace::{PacketRecord, SimTime, TraceShard, TraceView};

/// State shared by every protocol operation of one experiment run.
///
/// The simulator does not own an event loop: protocol operations (TCP
/// connection establishment, request/response exchanges, …) are *analytic* —
/// each takes an explicit start time, computes its completion time from the
/// path model, and records the packets it generated. `Simulator` tracks the
/// furthest point in virtual time any operation has reached, provides the
/// deterministic random stream, and owns its private capture shard — plain
/// owned data, so a long-lived client migrates between round workers by
/// moving its simulator, with no lock on the packet path.
#[derive(Debug, Clone)]
pub struct Simulator {
    now: SimTime,
    rng: SimRng,
    shard: TraceShard,
}

impl Simulator {
    /// Creates a simulator with a fresh capture shard and the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Simulator { now: SimTime::ZERO, rng: SimRng::new(seed), shard: TraceShard::new() }
    }

    /// Creates a simulator reusing an existing RNG (e.g. a derived stream for
    /// repetition *i* of a benchmark).
    pub fn with_rng(rng: SimRng) -> Self {
        Simulator { now: SimTime::ZERO, rng, shard: TraceShard::new() }
    }

    /// The furthest point in virtual time reached so far.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the high-water mark of virtual time. Passing an earlier time
    /// is a no-op (several concurrent operations may finish out of order).
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Mutable access to the deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Read view of the capture so far (insertion order).
    pub fn trace(&self) -> TraceView<'_> {
        self.shard.view()
    }

    /// The capture shard, for protocol endpoints that allocate flows and
    /// record packets.
    pub fn trace_mut(&mut self) -> &mut TraceShard {
        &mut self.shard
    }

    /// Convenience: snapshot of the captured packets in canonical
    /// `(timestamp, flow, seq)` order.
    pub fn packets(&self) -> Vec<PacketRecord> {
        self.shard.view().sorted()
    }

    /// Consumes the simulator, returning the captured packets in canonical
    /// order without cloning.
    pub fn into_packets(self) -> Vec<PacketRecord> {
        self.shard.into_packets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_a_high_water_mark() {
        let mut sim = Simulator::new(1);
        assert_eq!(sim.now(), SimTime::ZERO);
        sim.advance_to(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
        sim.advance_to(SimTime::from_secs(3));
        assert_eq!(sim.now(), SimTime::from_secs(5), "clock never goes backwards");
        sim.advance_to(SimTime::from_secs(10));
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn simulators_with_same_seed_share_random_stream() {
        let mut a = Simulator::new(77);
        let mut b = Simulator::new(77);
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
    }

    #[test]
    fn with_rng_uses_the_provided_stream() {
        let root = SimRng::new(5);
        let mut a = Simulator::with_rng(root.derive(1));
        let mut b = Simulator::with_rng(root.derive(1));
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
    }

    #[test]
    fn trace_starts_empty() {
        let sim = Simulator::new(1);
        assert!(sim.trace().is_empty());
        assert!(sim.packets().is_empty());
        assert!(sim.into_packets().is_empty());
    }
}
