//! Deterministic random number generation.
//!
//! Every source of randomness in the simulator (RTT jitter, server think-time
//! variation, workload content) flows through [`SimRng`], a thin wrapper over
//! a seeded [`rand::rngs::StdRng`]. Running the same experiment with the same
//! seed reproduces the exact same trace, which the test-suite relies on; the
//! 24 repetitions of each benchmark use 24 derived seeds.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Seeded random number generator used across the simulation.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed), seed }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for a sub-experiment (e.g. repetition
    /// `i` of a benchmark). Derivations with different labels are independent.
    pub fn derive(&self, label: u64) -> SimRng {
        // SplitMix64-style mixing keeps derived streams decorrelated.
        let mut z =
            self.seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(label.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Uniform sample in `[low, high)`.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(high >= low, "invalid uniform range");
        if high == low {
            return low;
        }
        self.inner.gen_range(low..high)
    }

    /// Uniform integer in `[low, high)`.
    pub fn uniform_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(high > low, "invalid uniform range");
        self.inner.gen_range(low..high)
    }

    /// Multiplicative jitter: returns `value * f` with `f` uniform in
    /// `[1 - spread, 1 + spread]`. Used for RTT and think-time variation.
    pub fn jitter(&mut self, value: f64, spread: f64) -> f64 {
        assert!((0.0..1.0).contains(&spread), "spread must be in [0, 1)");
        let factor = self.uniform(1.0 - spread, 1.0 + spread);
        value * factor
    }

    /// A random boolean that is `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.inner.gen_bool(p)
    }

    /// Fills a byte buffer with random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    /// A raw 64-bit random value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derived_streams_are_deterministic_and_distinct() {
        let root = SimRng::new(99);
        let mut d1a = root.derive(1);
        let mut d1b = root.derive(1);
        let mut d2 = root.derive(2);
        assert_eq!(d1a.next_u64(), d1b.next_u64());
        assert_ne!(root.derive(1).next_u64(), d2.next_u64());
        assert_eq!(root.seed(), 99);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let v = rng.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
            let n = rng.uniform_u64(10, 20);
            assert!((10..20).contains(&n));
        }
        assert_eq!(rng.uniform(4.0, 4.0), 4.0);
    }

    #[test]
    fn jitter_stays_within_spread() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let v = rng.jitter(100.0, 0.2);
            assert!((80.0..=120.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..2000).filter(|_| rng.chance(0.25)).count();
        assert!(hits > 350 && hits < 650, "got {hits}");
    }

    #[test]
    fn fill_bytes_produces_non_trivial_data() {
        let mut rng = SimRng::new(13);
        let mut buf = [0u8; 256];
        rng.fill_bytes(&mut buf);
        let distinct: std::collections::HashSet<u8> = buf.iter().copied().collect();
        assert!(distinct.len() > 50);
    }

    #[test]
    #[should_panic(expected = "invalid uniform range")]
    fn uniform_rejects_inverted_range() {
        let mut rng = SimRng::new(1);
        let _ = rng.uniform(5.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "spread must be in [0, 1)")]
    fn jitter_rejects_bad_spread() {
        let mut rng = SimRng::new(1);
        let _ = rng.jitter(10.0, 1.5);
    }
}
