//! UDP datagram exchanges.
//!
//! The architecture-discovery methodology of §2.1 resolves each service's DNS
//! names through ~2,000 open resolvers. The DNS substrate in `cloudsim-geo`
//! models the resolution logic; this module provides the wire-level cost of a
//! query/response pair so that DNS traffic shows up in the experiment traces
//! (classified as [`FlowKind::Dns`]).

use crate::host::HostId;
use crate::network::Network;
use crate::sim::Simulator;
use cloudsim_trace::packet::UDP_HEADER_BYTES;
use cloudsim_trace::{
    Direction, Endpoint, FlowKind, PacketRecord, SimTime, TcpFlags, TransportProtocol,
};

/// Performs one UDP request/response exchange (e.g. a DNS query) with a host.
/// Returns the time the response arrives back at the client.
pub fn udp_exchange(
    sim: &mut Simulator,
    net: &Network,
    host: HostId,
    start: SimTime,
    query_bytes: u32,
    response_bytes: u32,
) -> SimTime {
    let path = net.path(host);
    let server = net.host(host).unwrap_or_else(|| panic!("unknown host {host}")).endpoint;
    let flow = sim.trace_mut().allocate_flow();
    let client = Endpoint::new(net.client().endpoint.addr, 53000 + (flow.0 % 1000) as u16);
    let rtt = path.sample_rtt(sim.rng());

    sim.trace_mut().record(PacketRecord {
        timestamp: start,
        src: client,
        dst: server,
        protocol: TransportProtocol::Udp,
        flags: TcpFlags::NONE,
        payload_len: query_bytes,
        header_len: UDP_HEADER_BYTES,
        direction: Direction::Upload,
        flow,
        kind: FlowKind::Dns,
    });
    let response_at = start + rtt;
    sim.trace_mut().record(PacketRecord {
        timestamp: response_at,
        src: server,
        dst: client,
        protocol: TransportProtocol::Udp,
        flags: TcpFlags::NONE,
        payload_len: response_bytes,
        header_len: UDP_HEADER_BYTES,
        direction: Direction::Download,
        flow,
        kind: FlowKind::Dns,
    });
    sim.advance_to(response_at);
    response_at
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostRole;
    use crate::path::PathSpec;
    use cloudsim_trace::SimDuration;

    #[test]
    fn dns_exchange_takes_one_rtt_and_is_classified_as_dns() {
        let mut net = Network::new();
        let resolver = net.add_host("resolver.example", [8, 8, 8, 8], 53, HostRole::Dns);
        net.set_path(
            resolver,
            PathSpec::symmetric(SimDuration::from_millis(40), 10_000_000).with_jitter(0.0),
        );
        let mut sim = Simulator::new(5);
        let done = udp_exchange(&mut sim, &net, resolver, SimTime::ZERO, 60, 180);
        assert_eq!(done, SimTime::from_millis(40));
        let packets = sim.packets();
        assert_eq!(packets.len(), 2);
        assert!(packets.iter().all(|p| p.kind == FlowKind::Dns));
        assert!(packets.iter().all(|p| p.protocol == TransportProtocol::Udp));
        assert_eq!(packets[0].payload_len, 60);
        assert_eq!(packets[1].payload_len, 180);
        assert_eq!(sim.now(), done);
    }

    #[test]
    fn each_exchange_uses_its_own_flow() {
        let mut net = Network::new();
        let resolver = net.add_host("resolver.example", [8, 8, 8, 8], 53, HostRole::Dns);
        let mut sim = Simulator::new(5);
        udp_exchange(&mut sim, &net, resolver, SimTime::ZERO, 60, 180);
        udp_exchange(&mut sim, &net, resolver, SimTime::from_secs(1), 60, 180);
        let table = sim.trace().flow_table();
        assert_eq!(table.len(), 2);
    }
}
