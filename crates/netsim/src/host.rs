//! Hosts: the test computer and the service front-end servers it talks to.

use cloudsim_trace::Endpoint;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a host registered in a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host#{}", self.0)
    }
}

/// Role a host plays in an experiment. §3.1 of the paper classifies contacted
/// servers into control and storage servers (plus Dropbox's plain-HTTP
/// notification servers); the DNS role supports the architecture-discovery
/// experiments of §2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostRole {
    /// The test computer running the client under test.
    Client,
    /// A control server (login, metadata, commit).
    Control,
    /// A storage server (bulk file content).
    Storage,
    /// A notification / keep-alive server.
    Notification,
    /// A DNS resolver or authoritative name server.
    Dns,
}

/// Static information about a host.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostInfo {
    /// Identifier within the owning network.
    pub id: HostId,
    /// DNS name the client would have resolved to reach this host.
    pub dns_name: String,
    /// Network endpoint (address and service port).
    pub endpoint: Endpoint,
    /// Role of the host.
    pub role: HostRole,
}

impl HostInfo {
    /// True when this host is one of the cloud-side servers (not the client,
    /// not a resolver).
    pub fn is_service_host(&self) -> bool {
        matches!(self.role, HostRole::Control | HostRole::Storage | HostRole::Notification)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_id_display() {
        assert_eq!(format!("{}", HostId(4)), "host#4");
    }

    #[test]
    fn service_host_classification() {
        let mk = |role| HostInfo {
            id: HostId(0),
            dns_name: "x.example".into(),
            endpoint: Endpoint::from_octets(10, 0, 0, 1, 443),
            role,
        };
        assert!(mk(HostRole::Control).is_service_host());
        assert!(mk(HostRole::Storage).is_service_host());
        assert!(mk(HostRole::Notification).is_service_host());
        assert!(!mk(HostRole::Client).is_service_host());
        assert!(!mk(HostRole::Dns).is_service_host());
    }
}
