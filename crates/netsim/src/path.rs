//! Network path characteristics between the test computer and a server.
//!
//! The paper's single-file results are dominated by the RTT between the
//! European testbed and each provider's data centres (§5.2: "the distance
//! between our testbed and the data centers dominates the metric"), so the
//! path model carries per-destination RTT and asymmetric bandwidth, plus an
//! RTT jitter knob that gives the 24 experiment repetitions realistic
//! variance.

use crate::rng::SimRng;
use cloudsim_trace::SimDuration;
use serde::{Deserialize, Serialize};

/// Maximum segment payload assumed by the loss model, matching the
/// simulator's Ethernet MSS (`cloudsim_trace::packet::MSS`).
const LOSS_MODEL_MSS_BITS: f64 = 1460.0 * 8.0;

/// Mathis constant `sqrt(3/2)` of the TCP loss-throughput relation.
const MATHIS_C: f64 = 1.224744871391589;

/// Path characteristics between the client and one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathSpec {
    /// Base round-trip time.
    pub rtt: SimDuration,
    /// Bottleneck bandwidth client → server in bits per second.
    pub up_bandwidth: u64,
    /// Bottleneck bandwidth server → client in bits per second.
    pub down_bandwidth: u64,
    /// Relative RTT jitter (0.0 = deterministic, 0.1 = ±10 %).
    pub rtt_jitter: f64,
    /// Steady-state segment loss rate (0.0 = lossless). Losses are modelled
    /// deterministically as a Mathis-formula throughput ceiling rather than
    /// random drops, keeping every simulation bit-reproducible.
    pub loss: f64,
    /// Bufferbloat knob: how strongly loss inflates the base RTT (standing
    /// queues build where loss recovery keeps refilling the bottleneck
    /// buffer). `0.0` disables the inflation entirely; the effective RTT is
    /// `rtt * (1 + bufferbloat * sqrt(loss))`, so the knob and the Mathis
    /// ceiling are co-tuned through the same inflated RTT — lossier paths
    /// get both a lower throughput ceiling *and* longer round trips.
    #[serde(default)]
    pub bufferbloat: f64,
    /// When true, the TCP model additionally draws seeded per-segment drops
    /// at the configured loss rate and pays a retransmission tail for each
    /// drop, instead of modelling loss purely as the analytic ceiling.
    /// Lossless paths draw nothing, so they stay bit-identical.
    #[serde(default)]
    pub segment_drops: bool,
}

impl PathSpec {
    /// A symmetric path with the same bandwidth in both directions and a
    /// default ±5 % RTT jitter.
    pub fn symmetric(rtt: SimDuration, bandwidth: u64) -> Self {
        assert!(bandwidth > 0, "bandwidth must be positive");
        PathSpec {
            rtt,
            up_bandwidth: bandwidth,
            down_bandwidth: bandwidth,
            rtt_jitter: 0.05,
            loss: 0.0,
            bufferbloat: 0.0,
            segment_drops: false,
        }
    }

    /// An asymmetric path (e.g. a residential up/down split).
    pub fn asymmetric(rtt: SimDuration, up: u64, down: u64) -> Self {
        assert!(up > 0 && down > 0, "bandwidth must be positive");
        PathSpec {
            rtt,
            up_bandwidth: up,
            down_bandwidth: down,
            rtt_jitter: 0.05,
            loss: 0.0,
            bufferbloat: 0.0,
            segment_drops: false,
        }
    }

    /// Returns a copy with a different jitter setting.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        self.rtt_jitter = jitter;
        self
    }

    /// Returns a copy with a steady-state segment loss rate.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        self.loss = loss;
        self
    }

    /// Returns a copy with a bufferbloat inflation knob (see
    /// [`PathSpec::bufferbloat`]). Zero disables the inflation.
    pub fn with_bufferbloat(mut self, bufferbloat: f64) -> Self {
        assert!(bufferbloat >= 0.0, "bufferbloat must be non-negative");
        self.bufferbloat = bufferbloat;
        self
    }

    /// Returns a copy with the seeded per-segment drop mode toggled (see
    /// [`PathSpec::segment_drops`]).
    pub fn with_segment_drops(mut self, on: bool) -> Self {
        self.segment_drops = on;
        self
    }

    /// The bufferbloat RTT-inflation factor: exactly `1.0` whenever the
    /// path is lossless or the knob is zero, so those paths provably take
    /// the identical arithmetic path as before the knob existed.
    pub fn rtt_inflation(&self) -> f64 {
        if self.loss <= 0.0 || self.bufferbloat <= 0.0 {
            return 1.0;
        }
        1.0 + self.bufferbloat * self.loss.sqrt()
    }

    /// The loss-inflated round-trip time every transfer and ceiling
    /// computation works against. Returns the base RTT *unchanged* (no
    /// float round trip) when the inflation factor is exactly 1.0.
    pub fn effective_rtt(&self) -> SimDuration {
        let inflation = self.rtt_inflation();
        if inflation == 1.0 {
            return self.rtt;
        }
        SimDuration::from_secs_f64(self.rtt.as_secs_f64() * inflation)
    }

    /// The Mathis-formula throughput ceiling a long-lived TCP flow sustains
    /// at this path's RTT and loss rate: `MSS/RTT * C/sqrt(loss)` bits per
    /// second. Uses the bufferbloat-inflated RTT, so the ceiling and the
    /// RTT inflation stay co-tuned. `u64::MAX` when the path is lossless or
    /// latency-free.
    fn mathis_ceiling_bps(&self) -> u64 {
        if self.loss <= 0.0 || self.rtt.is_zero() {
            return u64::MAX;
        }
        let rtt_secs = self.effective_rtt().as_secs_f64();
        let bps = LOSS_MODEL_MSS_BITS * MATHIS_C / (rtt_secs * self.loss.sqrt());
        (bps.max(1.0)).min(u64::MAX as f64) as u64
    }

    /// Effective client → server bandwidth after the loss ceiling.
    pub fn effective_up_bandwidth(&self) -> u64 {
        self.up_bandwidth.min(self.mathis_ceiling_bps())
    }

    /// Effective server → client bandwidth after the loss ceiling.
    pub fn effective_down_bandwidth(&self) -> u64 {
        self.down_bandwidth.min(self.mathis_ceiling_bps())
    }

    /// Samples the RTT for one exchange, applying jitter around the
    /// bufferbloat-inflated base.
    pub fn sample_rtt(&self, rng: &mut SimRng) -> SimDuration {
        let base = self.effective_rtt();
        if self.rtt_jitter == 0.0 || base.is_zero() {
            return base;
        }
        let jittered = rng.jitter(base.as_secs_f64(), self.rtt_jitter);
        SimDuration::from_secs_f64(jittered)
    }

    /// One-way latency (half the base RTT).
    pub fn one_way(&self) -> SimDuration {
        self.rtt / 2
    }

    /// The bandwidth-delay product in bytes for the upload direction: how much
    /// data fits "in flight"; the TCP model stops growing its window beyond
    /// this point. Uses the loss-capped effective bandwidth so lossy links
    /// also bound the congestion window.
    pub fn bdp_bytes_up(&self) -> u64 {
        (self.effective_up_bandwidth() as f64 / 8.0 * self.effective_rtt().as_secs_f64()).ceil()
            as u64
    }

    /// The bandwidth-delay product in bytes for the download direction — the
    /// in-flight bound a server filling the client's *downstream* pipe works
    /// against. On asymmetric links (ADSL's 1 up / 8 down split) this is
    /// several times [`PathSpec::bdp_bytes_up`], which is what lets restores
    /// run far faster than uploads on the same link.
    pub fn bdp_bytes_down(&self) -> u64 {
        (self.effective_down_bandwidth() as f64 / 8.0 * self.effective_rtt().as_secs_f64()).ceil()
            as u64
    }
}

impl Default for PathSpec {
    fn default() -> Self {
        // The paper's testbed: 1 Gb/s campus Ethernet; a nearby server.
        PathSpec::symmetric(SimDuration::from_millis(20), 1_000_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_and_asymmetric_constructors() {
        let s = PathSpec::symmetric(SimDuration::from_millis(10), 1_000_000);
        assert_eq!(s.up_bandwidth, 1_000_000);
        assert_eq!(s.down_bandwidth, 1_000_000);
        let a = PathSpec::asymmetric(SimDuration::from_millis(10), 1_000_000, 8_000_000);
        assert_eq!(a.up_bandwidth, 1_000_000);
        assert_eq!(a.down_bandwidth, 8_000_000);
        assert_eq!(a.one_way(), SimDuration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = PathSpec::symmetric(SimDuration::from_millis(10), 0);
    }

    #[test]
    fn jitter_configuration_is_validated() {
        let p = PathSpec::default().with_jitter(0.2);
        assert_eq!(p.rtt_jitter, 0.2);
    }

    #[test]
    #[should_panic(expected = "jitter must be in [0, 1)")]
    fn excessive_jitter_rejected() {
        let _ = PathSpec::default().with_jitter(1.0);
    }

    #[test]
    fn sampled_rtt_stays_within_jitter_band() {
        let p = PathSpec::symmetric(SimDuration::from_millis(100), 1_000_000).with_jitter(0.1);
        let mut rng = SimRng::new(7);
        for _ in 0..500 {
            let rtt = p.sample_rtt(&mut rng);
            assert!(rtt >= SimDuration::from_millis(90) && rtt <= SimDuration::from_millis(110));
        }
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let p = PathSpec::symmetric(SimDuration::from_millis(50), 1_000_000).with_jitter(0.0);
        let mut rng = SimRng::new(7);
        assert_eq!(p.sample_rtt(&mut rng), SimDuration::from_millis(50));
    }

    #[test]
    fn bdp_matches_hand_computation() {
        // 100 Mb/s * 0.1 s = 10 Mb = 1.25 MB in flight.
        let p = PathSpec::symmetric(SimDuration::from_millis(100), 100_000_000);
        assert_eq!(p.bdp_bytes_up(), 1_250_000);
        assert_eq!(p.bdp_bytes_down(), 1_250_000);
        // An ADSL-style split: the downstream pipe holds 8x the bytes.
        let a = PathSpec::asymmetric(SimDuration::from_millis(100), 1_000_000, 8_000_000);
        assert_eq!(a.bdp_bytes_up(), 12_500);
        assert_eq!(a.bdp_bytes_down(), 100_000);
    }

    #[test]
    fn lossless_paths_run_at_line_rate() {
        let p = PathSpec::asymmetric(SimDuration::from_millis(50), 1_000_000, 8_000_000);
        assert_eq!(p.effective_up_bandwidth(), 1_000_000);
        assert_eq!(p.effective_down_bandwidth(), 8_000_000);
    }

    #[test]
    fn loss_caps_throughput_via_the_mathis_ceiling() {
        // 1 % loss at 100 ms RTT: 11680 * 1.2247 / (0.1 * 0.1) ≈ 1.43 Mb/s.
        let p = PathSpec::symmetric(SimDuration::from_millis(100), 100_000_000).with_loss(0.01);
        let eff = p.effective_up_bandwidth();
        assert!((1_400_000..1_500_000).contains(&eff), "effective {eff}");
        assert_eq!(eff, p.effective_down_bandwidth());
        // The ceiling also bounds the in-flight window.
        assert!(p.bdp_bytes_up() < PathSpec::symmetric(p.rtt, p.up_bandwidth).bdp_bytes_up());
        // A fat lossless pipe is untouched; a thin lossy pipe is already
        // bandwidth-bound so the ceiling never binds.
        let thin = PathSpec::symmetric(SimDuration::from_millis(10), 500_000).with_loss(0.001);
        assert_eq!(thin.effective_up_bandwidth(), 500_000);
    }

    #[test]
    #[should_panic(expected = "loss must be in [0, 1)")]
    fn excessive_loss_rejected() {
        let _ = PathSpec::default().with_loss(1.0);
    }

    #[test]
    fn bufferbloat_inflates_rtt_only_when_loss_and_knob_are_both_set() {
        let base = PathSpec::symmetric(SimDuration::from_millis(100), 100_000_000);
        // Knob without loss, loss without knob: exactly the base RTT — not
        // merely close, the identical value, so lossless paths replay
        // bit-identically through the new arithmetic.
        assert_eq!(base.with_bufferbloat(2.0).effective_rtt(), base.rtt);
        assert_eq!(base.with_loss(0.01).effective_rtt(), base.rtt);
        assert_eq!(base.with_bufferbloat(2.0).rtt_inflation(), 1.0);

        // Both set: RTT inflates by 1 + knob * sqrt(loss).
        let bloated = base.with_loss(0.01).with_bufferbloat(2.0);
        assert_eq!(bloated.rtt_inflation(), 1.0 + 2.0 * 0.1);
        assert_eq!(bloated.effective_rtt(), SimDuration::from_millis(120));
    }

    #[test]
    fn bufferbloat_co_tunes_the_mathis_ceiling_and_the_bdp() {
        let lossy = PathSpec::symmetric(SimDuration::from_millis(100), 100_000_000).with_loss(0.01);
        let bloated = lossy.with_bufferbloat(2.0);
        // The longer effective RTT lowers the throughput ceiling…
        assert!(bloated.effective_up_bandwidth() < lossy.effective_up_bandwidth());
        // …while the in-flight window reflects both the lower ceiling and
        // the longer RTT (here the 1/RTT ceiling and the *RTT window cancel).
        assert!(bloated.bdp_bytes_up() <= lossy.bdp_bytes_up() * 12 / 10 + 1);
        // Sampled RTTs jitter around the inflated base.
        let mut rng = SimRng::new(11);
        let p = bloated.with_jitter(0.05);
        for _ in 0..200 {
            let rtt = p.sample_rtt(&mut rng);
            assert!(rtt >= SimDuration::from_millis(114) && rtt <= SimDuration::from_millis(126));
        }
    }

    #[test]
    fn lossless_paths_sample_identical_rtts_regardless_of_the_knob() {
        let plain = PathSpec::symmetric(SimDuration::from_millis(80), 10_000_000).with_jitter(0.1);
        let knobbed = plain.with_bufferbloat(3.0).with_segment_drops(true);
        let mut a = SimRng::new(5);
        let mut b = SimRng::new(5);
        for _ in 0..500 {
            assert_eq!(plain.sample_rtt(&mut a), knobbed.sample_rtt(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "bufferbloat must be non-negative")]
    fn negative_bufferbloat_rejected() {
        let _ = PathSpec::default().with_bufferbloat(-0.1);
    }
}
